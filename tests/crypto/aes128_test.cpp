#include "crypto/aes128.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace whisper::crypto {
namespace {

AesKey key_from_hex(const std::string& hex) {
  Bytes b = from_hex(hex);
  AesKey k{};
  std::copy(b.begin(), b.end(), k.begin());
  return k;
}

AesBlock block_from_hex(const std::string& hex) {
  Bytes b = from_hex(hex);
  AesBlock blk{};
  std::copy(b.begin(), b.end(), blk.begin());
  return blk;
}

// FIPS-197 Appendix C.1 vector.
TEST(Aes128, Fips197KnownAnswer) {
  const AesKey key = key_from_hex("000102030405060708090a0b0c0d0e0f");
  const Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  const Aes128 cipher(key);
  std::uint8_t ct[16];
  cipher.encrypt_block(pt.data(), ct);
  EXPECT_EQ(to_hex(BytesView(ct, 16)), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

// NIST SP 800-38A F.1.1 (ECB-AES128 block 1).
TEST(Aes128, Sp800_38aKnownAnswer) {
  const AesKey key = key_from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes pt = from_hex("6bc1bee22e409f96e93d7e117393172a");
  const Aes128 cipher(key);
  std::uint8_t ct[16];
  cipher.encrypt_block(pt.data(), ct);
  EXPECT_EQ(to_hex(BytesView(ct, 16)), "3ad77bb40d7a3660a89ecaf32466ef97");
}

TEST(Aes128, DecryptInvertsEncrypt) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    AesKey key;
    rng.fill_bytes(key.data(), key.size());
    std::uint8_t pt[16], ct[16], back[16];
    rng.fill_bytes(pt, 16);
    const Aes128 cipher(key);
    cipher.encrypt_block(pt, ct);
    cipher.decrypt_block(ct, back);
    EXPECT_EQ(0, memcmp(pt, back, 16));
  }
}

// NIST SP 800-38A F.5.1 CTR-AES128.
TEST(Aes128Ctr, Sp800_38aKnownAnswer) {
  const AesKey key = key_from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const AesBlock iv = block_from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  const Bytes pt = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51");
  const Bytes ct = aes128_ctr(key, iv, pt);
  EXPECT_EQ(to_hex(ct),
            "874d6191b620e3261bef6864990db6ce"
            "9806f66b7970fdff8617187bb9fffdff");
}

TEST(Aes128Ctr, RoundTripVariousLengths) {
  Rng rng(2);
  for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 31u, 32u, 100u, 1000u}) {
    AesKey key;
    AesBlock iv;
    rng.fill_bytes(key.data(), key.size());
    rng.fill_bytes(iv.data(), iv.size());
    Bytes pt(len);
    rng.fill_bytes(pt.data(), len);
    const Bytes ct = aes128_ctr(key, iv, pt);
    EXPECT_EQ(ct.size(), len);
    EXPECT_EQ(aes128_ctr(key, iv, ct), pt) << "len " << len;
  }
}

TEST(Aes128Ctr, CounterIncrementCrossesByteBoundary) {
  // IV ending in 0xff forces a carry into the next counter byte.
  const AesKey key = key_from_hex("000102030405060708090a0b0c0d0e0f");
  const AesBlock iv = block_from_hex("000000000000000000000000000000ff");
  const Bytes pt(48, 0);
  const Bytes ct = aes128_ctr(key, iv, pt);
  EXPECT_EQ(aes128_ctr(key, iv, ct), pt);
  // Keystream blocks must differ (counter actually advanced).
  EXPECT_NE(Bytes(ct.begin(), ct.begin() + 16), Bytes(ct.begin() + 16, ct.begin() + 32));
}

TEST(Aes128Ctr, DifferentIvDifferentCiphertext) {
  const AesKey key = key_from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes pt(32, 0x42);
  const Bytes c1 = aes128_ctr(key, block_from_hex("00000000000000000000000000000000"), pt);
  const Bytes c2 = aes128_ctr(key, block_from_hex("00000000000000000000000000000001"), pt);
  EXPECT_NE(c1, c2);
}

TEST(Aes128Ctr, DifferentKeyDifferentCiphertext) {
  const AesBlock iv{};
  const Bytes pt(32, 0x42);
  const Bytes c1 = aes128_ctr(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"), iv, pt);
  const Bytes c2 = aes128_ctr(key_from_hex("2b7e151628aed2a6abf7158809cf4f3d"), iv, pt);
  EXPECT_NE(c1, c2);
}

}  // namespace
}  // namespace whisper::crypto

#include "crypto/rsa.hpp"

#include <gtest/gtest.h>

namespace whisper::crypto {
namespace {

// Keygen is the slow part; share keypairs across tests in this file.
const RsaKeyPair& key512() {
  static const RsaKeyPair kp = [] {
    Drbg d(101);
    return RsaKeyPair::generate(512, d);
  }();
  return kp;
}

const RsaKeyPair& key1024() {
  static const RsaKeyPair kp = [] {
    Drbg d(202);
    return RsaKeyPair::generate(1024, d);
  }();
  return kp;
}

TEST(Prime, KnownPrimesAccepted) {
  Drbg d(1);
  for (std::uint64_t p : {2ull, 3ull, 5ull, 65537ull, 1000003ull, 2147483647ull}) {
    EXPECT_TRUE(is_probable_prime(BigInt{p}, d)) << p;
  }
}

TEST(Prime, KnownCompositesRejected) {
  Drbg d(2);
  // Includes Carmichael numbers 561, 1105, 6601.
  for (std::uint64_t n : {1ull, 4ull, 100ull, 561ull, 1105ull, 6601ull, 1000001ull}) {
    EXPECT_FALSE(is_probable_prime(BigInt{n}, d)) << n;
  }
}

TEST(Prime, GeneratedPrimeHasExactBitLength) {
  Drbg d(3);
  for (std::size_t bits : {64u, 128u, 256u}) {
    BigInt p = generate_prime(bits, d);
    EXPECT_EQ(p.bit_length(), bits);
    EXPECT_TRUE(p.is_odd());
    EXPECT_TRUE(is_probable_prime(p, d));
  }
}

TEST(Prime, TopTwoBitsSet) {
  Drbg d(4);
  BigInt p = generate_prime(128, d);
  EXPECT_TRUE(p.bit(127));
  EXPECT_TRUE(p.bit(126));
}

TEST(RsaKeyPair, GeneratedModulusHasRequestedSize) {
  EXPECT_EQ(key512().pub.n.bit_length(), 512u);
  EXPECT_EQ(key512().pub.block_size(), 64u);
  EXPECT_EQ(key1024().pub.n.bit_length(), 1024u);
}

TEST(RsaKeyPair, DeterministicFromSeed) {
  Drbg d1(77), d2(77);
  const RsaKeyPair a = RsaKeyPair::generate(512, d1);
  const RsaKeyPair b = RsaKeyPair::generate(512, d2);
  EXPECT_EQ(a.pub.n, b.pub.n);
  EXPECT_EQ(a.d, b.d);
}

TEST(RsaEncrypt, RoundTrip) {
  Drbg d(5);
  const Bytes msg = to_bytes("hello whisper");
  const Bytes ct = rsa_encrypt(key512().pub, msg, d);
  ASSERT_EQ(ct.size(), 64u);
  auto pt = rsa_decrypt(key512(), ct);
  ASSERT_TRUE(pt.has_value());
  EXPECT_EQ(*pt, msg);
}

TEST(RsaEncrypt, MaxSizeMessage) {
  Drbg d(6);
  const Bytes msg(key512().pub.max_message(), 0xaa);
  const Bytes ct = rsa_encrypt(key512().pub, msg, d);
  ASSERT_FALSE(ct.empty());
  auto pt = rsa_decrypt(key512(), ct);
  ASSERT_TRUE(pt.has_value());
  EXPECT_EQ(*pt, msg);
}

TEST(RsaEncrypt, OversizedMessageRejected) {
  Drbg d(7);
  const Bytes msg(key512().pub.max_message() + 1, 0xaa);
  EXPECT_TRUE(rsa_encrypt(key512().pub, msg, d).empty());
}

TEST(RsaEncrypt, EmptyMessageRoundTrip) {
  Drbg d(8);
  const Bytes ct = rsa_encrypt(key512().pub, Bytes{}, d);
  auto pt = rsa_decrypt(key512(), ct);
  ASSERT_TRUE(pt.has_value());
  EXPECT_TRUE(pt->empty());
}

TEST(RsaEncrypt, RandomizedPadding) {
  Drbg d(9);
  const Bytes msg = to_bytes("same message");
  EXPECT_NE(rsa_encrypt(key512().pub, msg, d), rsa_encrypt(key512().pub, msg, d));
}

TEST(RsaDecrypt, WrongKeyFails) {
  Drbg d(10);
  const Bytes ct = rsa_encrypt(key512().pub, to_bytes("secret"), d);
  Drbg d2(11);
  const RsaKeyPair other = RsaKeyPair::generate(512, d2);
  auto pt = rsa_decrypt(other, ct);
  // Either padding check fails or garbage comes out; it must not be "secret".
  if (pt.has_value()) {
    EXPECT_NE(*pt, to_bytes("secret"));
  }
}

TEST(RsaDecrypt, CorruptedCiphertextFails) {
  Drbg d(12);
  Bytes ct = rsa_encrypt(key512().pub, to_bytes("secret"), d);
  ct[10] ^= 0x01;
  auto pt = rsa_decrypt(key512(), ct);
  if (pt.has_value()) {
    EXPECT_NE(*pt, to_bytes("secret"));
  }
}

TEST(RsaDecrypt, WrongLengthRejected) {
  EXPECT_FALSE(rsa_decrypt(key512(), Bytes(63, 0)).has_value());
  EXPECT_FALSE(rsa_decrypt(key512(), Bytes(65, 0)).has_value());
}

TEST(RsaSign, VerifyAccepts) {
  const Bytes msg = to_bytes("signed payload");
  const Bytes sig = rsa_sign(key512(), msg);
  EXPECT_TRUE(rsa_verify(key512().pub, msg, sig));
}

TEST(RsaSign, VerifyRejectsTamperedMessage) {
  const Bytes msg = to_bytes("signed payload");
  const Bytes sig = rsa_sign(key512(), msg);
  EXPECT_FALSE(rsa_verify(key512().pub, to_bytes("signed payloaD"), sig));
}

TEST(RsaSign, VerifyRejectsTamperedSignature) {
  const Bytes msg = to_bytes("signed payload");
  Bytes sig = rsa_sign(key512(), msg);
  sig[0] ^= 0x01;
  EXPECT_FALSE(rsa_verify(key512().pub, msg, sig));
}

TEST(RsaSign, VerifyRejectsWrongKey) {
  const Bytes msg = to_bytes("signed payload");
  const Bytes sig = rsa_sign(key512(), msg);
  EXPECT_FALSE(rsa_verify(key1024().pub, msg, sig));
}

TEST(RsaSign, SignatureDeterministic) {
  const Bytes msg = to_bytes("msg");
  EXPECT_EQ(rsa_sign(key512(), msg), rsa_sign(key512(), msg));
}

TEST(RsaSign, WorksAt1024Bits) {
  const Bytes msg = to_bytes("larger key");
  const Bytes sig = rsa_sign(key1024(), msg);
  EXPECT_EQ(sig.size(), 128u);
  EXPECT_TRUE(rsa_verify(key1024().pub, msg, sig));
}

TEST(RsaPublicKey, SerializeRoundTrip) {
  const Bytes wire = key512().pub.serialize();
  auto back = RsaPublicKey::deserialize(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, key512().pub);
}

TEST(RsaPublicKey, PaddedSerializationStillParses) {
  const Bytes wire = key512().pub.serialize_padded(1024);
  EXPECT_EQ(wire.size(), 1024u);
  auto back = RsaPublicKey::deserialize(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, key512().pub);
}

TEST(RsaPublicKey, DeserializeGarbageFails) {
  EXPECT_FALSE(RsaPublicKey::deserialize(Bytes{1, 2, 3}).has_value());
  EXPECT_FALSE(RsaPublicKey::deserialize(Bytes{}).has_value());
}

TEST(RsaPublicKey, FingerprintStableAndDistinct) {
  EXPECT_EQ(key512().pub.fingerprint(), key512().pub.fingerprint());
  EXPECT_NE(key512().pub.fingerprint(), key1024().pub.fingerprint());
}

TEST(RsaEncrypt, RoundTrip1024) {
  Drbg d(13);
  const Bytes msg(64, 0x5c);
  const Bytes ct = rsa_encrypt(key1024().pub, msg, d);
  ASSERT_EQ(ct.size(), 128u);
  auto pt = rsa_decrypt(key1024(), ct);
  ASSERT_TRUE(pt.has_value());
  EXPECT_EQ(*pt, msg);
}

}  // namespace
}  // namespace whisper::crypto

// BigInt cross-checked against native unsigned __int128 arithmetic: for
// operands that fit in 128 bits, every operation must agree exactly with
// the hardware.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/bigint.hpp"

namespace whisper::crypto {
namespace {

using u128 = unsigned __int128;

BigInt from_u128(u128 v) {
  Bytes be(16);
  for (int i = 15; i >= 0; --i) {
    be[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v);
    v >>= 8;
  }
  return BigInt::from_bytes(be);
}

u128 to_u128(const BigInt& v) {
  u128 out = 0;
  for (std::uint8_t b : v.to_bytes()) out = (out << 8) | b;
  return out;
}

u128 random_u128(Rng& rng, int max_bits) {
  u128 v = (static_cast<u128>(rng.next_u64()) << 64) | rng.next_u64();
  const int shift = 128 - static_cast<int>(rng.next_below(static_cast<std::uint64_t>(max_bits)) + 1);
  return v >> shift;
}

TEST(BigIntReference, AdditionMatchesNative) {
  Rng rng(101);
  for (int i = 0; i < 500; ++i) {
    const u128 a = random_u128(rng, 127);  // headroom for the carry
    const u128 b = random_u128(rng, 127);
    EXPECT_EQ(to_u128(from_u128(a) + from_u128(b)), a + b);
  }
}

TEST(BigIntReference, SubtractionMatchesNative) {
  Rng rng(102);
  for (int i = 0; i < 500; ++i) {
    u128 a = random_u128(rng, 128);
    u128 b = random_u128(rng, 128);
    if (a < b) std::swap(a, b);
    EXPECT_EQ(to_u128(from_u128(a) - from_u128(b)), a - b);
  }
}

TEST(BigIntReference, MultiplicationMatchesNative) {
  Rng rng(103);
  for (int i = 0; i < 500; ++i) {
    const u128 a = random_u128(rng, 64);
    const u128 b = random_u128(rng, 63);
    EXPECT_EQ(to_u128(from_u128(a) * from_u128(b)), a * b);
  }
}

TEST(BigIntReference, DivisionMatchesNative) {
  Rng rng(104);
  for (int i = 0; i < 500; ++i) {
    const u128 a = random_u128(rng, 128);
    u128 b = random_u128(rng, static_cast<int>(rng.next_below(128)) + 1);
    if (b == 0) b = 1;
    auto [q, r] = from_u128(a).divmod(from_u128(b));
    EXPECT_EQ(to_u128(q), a / b);
    EXPECT_EQ(to_u128(r), a % b);
  }
}

TEST(BigIntReference, ShiftsMatchNative) {
  Rng rng(105);
  for (int i = 0; i < 300; ++i) {
    const u128 a = random_u128(rng, 100);
    const std::size_t s = rng.next_below(28);
    EXPECT_EQ(to_u128(from_u128(a) << s), a << s);
    EXPECT_EQ(to_u128(from_u128(a) >> s), a >> s);
  }
}

TEST(BigIntReference, ComparisonMatchesNative) {
  Rng rng(106);
  for (int i = 0; i < 500; ++i) {
    const u128 a = random_u128(rng, 128);
    const u128 b = random_u128(rng, 128);
    EXPECT_EQ(from_u128(a) < from_u128(b), a < b);
    EXPECT_EQ(from_u128(a) == from_u128(b), a == b);
  }
}

TEST(BigIntReference, ModExpMatchesNativeSmall) {
  Rng rng(107);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t base = rng.next_below(1 << 20);
    const std::uint64_t exp = rng.next_below(64);
    const std::uint64_t mod = (rng.next_below(1 << 20) | 1) + 2;  // odd, >= 3
    // Native reference via repeated squaring in 128 bits.
    u128 acc = 1, b = base % mod;
    for (std::uint64_t e = exp; e > 0; e >>= 1) {
      if (e & 1) acc = acc * b % mod;
      b = b * b % mod;
    }
    EXPECT_EQ(to_u128(BigInt{base}.modexp(BigInt{exp}, BigInt{mod})),
              acc) << base << "^" << exp << " mod " << mod;
  }
}

TEST(BigIntReference, ModU64MatchesNative) {
  Rng rng(108);
  for (int i = 0; i < 300; ++i) {
    const u128 a = random_u128(rng, 128);
    const std::uint64_t m = rng.next_u64() | 1;
    EXPECT_EQ(from_u128(a).mod_u64(m), static_cast<std::uint64_t>(a % m));
  }
}

TEST(BigIntReference, GcdMatchesEuclid) {
  Rng rng(109);
  for (int i = 0; i < 300; ++i) {
    std::uint64_t a = rng.next_below(1ull << 40);
    std::uint64_t b = rng.next_below(1ull << 40);
    std::uint64_t x = a, y = b;
    while (y != 0) {
      const std::uint64_t t = x % y;
      x = y;
      y = t;
    }
    EXPECT_EQ(BigInt::gcd(BigInt{a}, BigInt{b}), BigInt{x});
  }
}

}  // namespace
}  // namespace whisper::crypto

#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"

namespace whisper::crypto {
namespace {

std::string hash_hex(const std::string& msg) {
  const Digest256 d = Sha256::hash(to_bytes(msg));
  return to_hex(BytesView(d.data(), d.size()));
}

// FIPS 180-4 / NIST test vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(hash_hex(""), "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hash_hex("abc"), "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hash_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  const Digest256 d = h.finish();
  EXPECT_EQ(to_hex(BytesView(d.data(), d.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog";
  Sha256 h;
  for (char c : msg) h.update(&c, 1);
  EXPECT_EQ(h.finish(), Sha256::hash(to_bytes(msg)));
}

TEST(Sha256, BlockBoundaryLengths) {
  // Lengths around the 64-byte block and 56-byte padding boundaries.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const Bytes msg(len, 0x5a);
    Sha256 split;
    split.update(BytesView(msg.data(), len / 2));
    split.update(BytesView(msg.data() + len / 2, len - len / 2));
    EXPECT_EQ(split.finish(), Sha256::hash(msg)) << "len " << len;
  }
}

TEST(Sha256, DifferentInputsDifferentDigests) {
  EXPECT_NE(Sha256::hash(to_bytes("a")), Sha256::hash(to_bytes("b")));
  EXPECT_NE(Sha256::hash(to_bytes("")), Sha256::hash(Bytes{0}));
}

TEST(Fingerprint64, StableAndDistinct) {
  EXPECT_EQ(fingerprint64(to_bytes("x")), fingerprint64(to_bytes("x")));
  EXPECT_NE(fingerprint64(to_bytes("x")), fingerprint64(to_bytes("y")));
}

TEST(Fingerprint64, MatchesDigestPrefix) {
  const Digest256 d = Sha256::hash(to_bytes("abc"));
  std::uint64_t expected = 0;
  for (int i = 0; i < 8; ++i) expected = (expected << 8) | d[static_cast<std::size_t>(i)];
  EXPECT_EQ(fingerprint64(to_bytes("abc")), expected);
}

}  // namespace
}  // namespace whisper::crypto

// Crypto fast-path equivalence: the CRT private-op and the cached
// fixed-window Montgomery exponentiation must be bit-identical to the plain
// implementations they replaced, across random keys, messages and operand
// shapes. A fast path that is ever wrong is worse than no fast path.
#include <gtest/gtest.h>

#include "crypto/bigint.hpp"
#include "crypto/rsa.hpp"

namespace whisper::crypto {
namespace {

// Strip the CRT material: private ops on the result take the plain
// single-exponentiation path.
RsaKeyPair without_crt(const RsaKeyPair& key) { return RsaKeyPair{key.pub, key.d}; }

// --- CRT private ops vs the plain path. ---

class CrtEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CrtEquivalence, GenerateFillsConsistentCrtMaterial) {
  Drbg d(3100 + GetParam());
  const RsaKeyPair key = RsaKeyPair::generate(GetParam(), d);
  ASSERT_TRUE(key.has_crt());
  EXPECT_EQ(key.p * key.q, key.pub.n);
  EXPECT_EQ(key.dp, key.d % (key.p - BigInt{1}));
  EXPECT_EQ(key.dq, key.d % (key.q - BigInt{1}));
  EXPECT_EQ((key.qinv * key.q) % key.p, BigInt{1});
}

TEST_P(CrtEquivalence, PrivateOpMatchesPlainOnRandomInputs) {
  Drbg d(3200 + GetParam());
  const RsaKeyPair key = RsaKeyPair::generate(GetParam(), d);
  const RsaKeyPair plain = without_crt(key);
  ASSERT_FALSE(plain.has_crt());
  for (int i = 0; i < 8; ++i) {
    const BigInt c = BigInt::from_bytes(d.bytes(GetParam() / 8)) % key.pub.n;
    EXPECT_EQ(rsa_private_op(key, c), rsa_private_op(plain, c)) << "input " << i;
  }
}

TEST_P(CrtEquivalence, DecryptByteIdenticalToPlain) {
  Drbg d(3300 + GetParam());
  const RsaKeyPair key = RsaKeyPair::generate(GetParam(), d);
  const RsaKeyPair plain = without_crt(key);
  for (int i = 0; i < 5; ++i) {
    Bytes msg(1 + static_cast<std::size_t>(d.below(key.pub.max_message())), 0);
    d.fill(msg.data(), msg.size());
    const Bytes ct = rsa_encrypt(key.pub, msg, d);
    const auto fast = rsa_decrypt(key, ct);
    const auto slow = rsa_decrypt(plain, ct);
    ASSERT_TRUE(fast.has_value());
    ASSERT_TRUE(slow.has_value());
    EXPECT_EQ(*fast, *slow);
    EXPECT_EQ(*fast, msg);
  }
}

TEST_P(CrtEquivalence, SignByteIdenticalToPlain) {
  Drbg d(3400 + GetParam());
  const RsaKeyPair key = RsaKeyPair::generate(GetParam(), d);
  const RsaKeyPair plain = without_crt(key);
  for (int i = 0; i < 5; ++i) {
    const Bytes msg = d.bytes(1 + static_cast<std::size_t>(d.below(200)));
    const Bytes fast = rsa_sign(key, msg);
    EXPECT_EQ(fast, rsa_sign(plain, msg));
    EXPECT_TRUE(rsa_verify(key.pub, msg, fast));
  }
}

TEST_P(CrtEquivalence, EdgeInputsMatchPlain) {
  Drbg d(3500 + GetParam());
  const RsaKeyPair key = RsaKeyPair::generate(GetParam(), d);
  const RsaKeyPair plain = without_crt(key);
  // 0, 1, and values congruent to 0 mod one prime (not coprime to n).
  for (const BigInt& c : {BigInt{0}, BigInt{1}, key.p, key.q, key.pub.n - BigInt{1}}) {
    EXPECT_EQ(rsa_private_op(key, c), rsa_private_op(plain, c));
  }
}

INSTANTIATE_TEST_SUITE_P(KeySizes, CrtEquivalence, ::testing::Values(512u, 768u));

// --- Cached public-key context: operations survive a wire round-trip. ---

TEST(MontCache, DeserializedKeyComputesIdenticalCiphertextChecks) {
  Drbg d(3600);
  const RsaKeyPair key = RsaKeyPair::generate(512, d);
  const Bytes msg = to_bytes("cache invalidation");
  const Bytes sig = rsa_sign(key, msg);
  ASSERT_TRUE(rsa_verify(key.pub, msg, sig));  // warms key.pub's cache

  const auto wire = RsaPublicKey::deserialize(key.pub.serialize());
  ASSERT_TRUE(wire.has_value());
  EXPECT_FALSE(wire->mont_cache);  // deserialize always starts cold
  EXPECT_TRUE(rsa_verify(*wire, msg, sig));
  EXPECT_TRUE(wire->mont_cache);  // first op built it

  // Copies made after warm-up share the context rather than rebuilding.
  const RsaPublicKey copy = key.pub;
  EXPECT_EQ(copy.mont_cache.get(), key.pub.mont_cache.get());
}

// --- Fixed-window Montgomery modexp vs a square-and-multiply reference. ---

// Textbook left-to-right square-and-multiply on top of divmod only; slow
// but independent of the Montgomery machinery under test.
BigInt reference_modexp(const BigInt& base, const BigInt& exp, const BigInt& m) {
  if (m.is_one()) return BigInt{};
  BigInt acc{1};
  const BigInt b = base % m;
  for (std::size_t i = exp.bit_length(); i-- > 0;) {
    acc = (acc * acc) % m;
    if (exp.bit(i)) acc = (acc * b) % m;
  }
  return acc;
}

TEST(MontgomeryCtx, MatchesReferenceAcrossShapes) {
  Drbg d(3700);
  for (const std::size_t bits : {64u, 192u, 512u, 1024u}) {
    BigInt m = BigInt::from_bytes(d.bytes(bits / 8));
    if (!m.is_odd()) m = m + BigInt{1};
    const MontgomeryCtx ctx(m);
    for (int i = 0; i < 6; ++i) {
      // Bases both below and above the modulus; exponents from tiny (binary
      // path) through full-width (windowed path).
      const BigInt base = BigInt::from_bytes(d.bytes(bits / 8 + 8));
      const BigInt exp = BigInt::from_bytes(d.bytes(1 + (bits / 8) * static_cast<std::size_t>(i) / 5));
      EXPECT_EQ(ctx.modexp(base, exp), reference_modexp(base, exp, m))
          << bits << " bits, round " << i;
    }
  }
}

TEST(MontgomeryCtx, ShortExponentBoundary) {
  // Exponents straddling the 20-bit binary/windowed cutover, including the
  // RSA public exponent.
  Drbg d(3800);
  BigInt m = BigInt::from_bytes(d.bytes(64));
  if (!m.is_odd()) m = m + BigInt{1};
  const MontgomeryCtx ctx(m);
  const BigInt base = BigInt::from_bytes(d.bytes(64));
  for (const std::uint64_t e : {1ull, 2ull, 3ull, 65537ull, (1ull << 20) - 1, 1ull << 20,
                                (1ull << 20) + 1, (1ull << 40) + 12345}) {
    EXPECT_EQ(ctx.modexp(base, BigInt{e}), reference_modexp(base, BigInt{e}, m)) << e;
  }
}

TEST(MontgomeryCtx, DegenerateOperands) {
  Drbg d(3900);
  BigInt m = BigInt::from_bytes(d.bytes(32));
  if (!m.is_odd()) m = m + BigInt{1};
  const MontgomeryCtx ctx(m);
  EXPECT_EQ(ctx.modexp(BigInt{0}, BigInt{5}), BigInt{0});
  EXPECT_EQ(ctx.modexp(BigInt{7}, BigInt{0}), BigInt{1});
  EXPECT_EQ(ctx.modexp(BigInt{0}, BigInt{0}), BigInt{1});  // 0^0 == 1 here, as before
  EXPECT_EQ(ctx.modexp(m, BigInt{3}), BigInt{0});          // base ≡ 0 (mod m)
  EXPECT_TRUE(MontgomeryCtx(BigInt{1}).modexp(BigInt{5}, BigInt{5}).is_zero());
  EXPECT_EQ(ctx.modulus(), m);
}

TEST(MontgomeryCtx, AgreesWithBigIntModexp) {
  // BigInt::modexp routes through a fresh context; a cached context must
  // give the very same bytes (this is the determinism guarantee the golden
  // telemetry test leans on).
  Drbg d(4000);
  BigInt m = BigInt::from_bytes(d.bytes(64));
  if (!m.is_odd()) m = m + BigInt{1};
  const MontgomeryCtx ctx(m);
  for (int i = 0; i < 4; ++i) {
    const BigInt base = BigInt::from_bytes(d.bytes(64));
    const BigInt exp = BigInt::from_bytes(d.bytes(64));
    EXPECT_EQ(ctx.modexp(base, exp), base.modexp(exp, m));
  }
}

// --- In-place entry points. ---

TEST(BigIntInPlace, MulIntoMatchesOperatorStar) {
  Drbg d(4100);
  BigInt out;
  for (int i = 0; i < 8; ++i) {
    const BigInt a = BigInt::from_bytes(d.bytes(1 + static_cast<std::size_t>(d.below(64))));
    const BigInt b = BigInt::from_bytes(d.bytes(1 + static_cast<std::size_t>(d.below(64))));
    BigInt::mul_into(a, b, out);
    EXPECT_EQ(out, a * b);
  }
  BigInt::mul_into(BigInt{0}, BigInt{5}, out);
  EXPECT_TRUE(out.is_zero());
}

TEST(BigIntInPlace, ModAssignMatchesOperatorPercent) {
  Drbg d(4200);
  for (int i = 0; i < 8; ++i) {
    const BigInt m = BigInt::from_bytes(d.bytes(16)) + BigInt{1};
    BigInt v = BigInt::from_bytes(d.bytes(1 + static_cast<std::size_t>(d.below(48))));
    const BigInt expected = v % m;
    v.mod_assign(m);
    EXPECT_EQ(v, expected);
  }
  // Below-modulus fast path leaves the value untouched.
  BigInt small{7};
  small.mod_assign(BigInt{1000});
  EXPECT_EQ(small, BigInt{7});
}

}  // namespace
}  // namespace whisper::crypto

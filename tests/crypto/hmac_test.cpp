#include "crypto/hmac.hpp"

#include <gtest/gtest.h>

namespace whisper::crypto {
namespace {

std::string hmac_hex(const std::string& key, const std::string& msg) {
  const Digest256 d = hmac_sha256(to_bytes(key), to_bytes(msg));
  return to_hex(BytesView(d.data(), d.size()));
}

// RFC 4231 test case 2.
TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(hmac_hex("Jefe", "what do ya want for nothing?"),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 1 (0x0b*20 key).
TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const Digest256 d = hmac_sha256(key, to_bytes("Hi There"));
  EXPECT_EQ(to_hex(BytesView(d.data(), d.size())),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 6: key longer than the block size.
TEST(Hmac, LongKeyHashedFirst) {
  const Bytes key(131, 0xaa);
  const Digest256 d = hmac_sha256(
      key, to_bytes("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(to_hex(BytesView(d.data(), d.size())),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, DifferentKeysDifferentTags) {
  EXPECT_NE(hmac_hex("key1", "msg"), hmac_hex("key2", "msg"));
}

TEST(Hmac, DifferentMessagesDifferentTags) {
  EXPECT_NE(hmac_hex("key", "msg1"), hmac_hex("key", "msg2"));
}

TEST(Hmac, EmptyInputsSupported) {
  EXPECT_EQ(hmac_hex("", "").size(), 64u);
}

TEST(Authenticated, RoundTrip) {
  AesKey key{};
  AesBlock iv{};
  key[0] = 1;
  iv[0] = 2;
  const Bytes msg = to_bytes("authenticated payload");
  const Bytes sealed = seal_authenticated(key, iv, msg);
  EXPECT_EQ(sealed.size(), msg.size() + 32);
  auto opened = open_authenticated(key, iv, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, msg);
}

TEST(Authenticated, EmptyPayloadRoundTrip) {
  AesKey key{};
  AesBlock iv{};
  auto opened = open_authenticated(key, iv, seal_authenticated(key, iv, Bytes{}));
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->empty());
}

TEST(Authenticated, TamperedCiphertextRejected) {
  AesKey key{};
  AesBlock iv{};
  Bytes sealed = seal_authenticated(key, iv, to_bytes("integrity"));
  sealed[0] ^= 0x01;
  EXPECT_FALSE(open_authenticated(key, iv, sealed).has_value());
}

TEST(Authenticated, TamperedTagRejected) {
  AesKey key{};
  AesBlock iv{};
  Bytes sealed = seal_authenticated(key, iv, to_bytes("integrity"));
  sealed.back() ^= 0x01;
  EXPECT_FALSE(open_authenticated(key, iv, sealed).has_value());
}

TEST(Authenticated, WrongKeyRejected) {
  AesKey key{}, other{};
  other[5] = 9;
  AesBlock iv{};
  const Bytes sealed = seal_authenticated(key, iv, to_bytes("integrity"));
  EXPECT_FALSE(open_authenticated(other, iv, sealed).has_value());
}

TEST(Authenticated, TruncatedInputRejected) {
  AesKey key{};
  AesBlock iv{};
  EXPECT_FALSE(open_authenticated(key, iv, Bytes(31, 0)).has_value());
}

}  // namespace
}  // namespace whisper::crypto

#include "crypto/envelope.hpp"

#include <gtest/gtest.h>

namespace whisper::crypto {
namespace {

const RsaKeyPair& key() {
  static const RsaKeyPair kp = [] {
    Drbg d(303);
    return RsaKeyPair::generate(512, d);
  }();
  return kp;
}

TEST(Envelope, RoundTripSmall) {
  Drbg d(1);
  const Bytes msg = to_bytes("short");
  const Bytes env = envelope_seal(key().pub, msg, d);
  auto back = envelope_open(key(), env);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, msg);
}

TEST(Envelope, RoundTripLargePayload) {
  Drbg d(2);
  Bytes msg(64 * 1024);
  d.fill(msg.data(), msg.size());
  const Bytes env = envelope_seal(key().pub, msg, d);
  auto back = envelope_open(key(), env);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, msg);
}

TEST(Envelope, RoundTripEmptyPayload) {
  Drbg d(3);
  const Bytes env = envelope_seal(key().pub, Bytes{}, d);
  auto back = envelope_open(key(), env);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

TEST(Envelope, SizeMatchesPredicted) {
  Drbg d(4);
  for (std::size_t n : {0u, 1u, 100u, 4096u}) {
    const Bytes env = envelope_seal(key().pub, Bytes(n, 0x7), d);
    EXPECT_EQ(env.size(), envelope_size(key().pub, n));
  }
}

TEST(Envelope, WrongKeyFails) {
  Drbg d(5);
  const Bytes env = envelope_seal(key().pub, to_bytes("secret"), d);
  Drbg d2(6);
  const RsaKeyPair other = RsaKeyPair::generate(512, d2);
  auto back = envelope_open(other, env);
  if (back.has_value()) {
    EXPECT_NE(*back, to_bytes("secret"));
  }
}

TEST(Envelope, TruncatedEnvelopeFails) {
  Drbg d(7);
  Bytes env = envelope_seal(key().pub, to_bytes("secret"), d);
  env.resize(key().pub.block_size() - 1);
  EXPECT_FALSE(envelope_open(key(), env).has_value());
}

TEST(Envelope, CorruptedRsaBlockFails) {
  Drbg d(8);
  Bytes env = envelope_seal(key().pub, to_bytes("secret"), d);
  env[5] ^= 0xff;
  auto back = envelope_open(key(), env);
  if (back.has_value()) {
    EXPECT_NE(*back, to_bytes("secret"));
  }
}

TEST(Envelope, FreshKeysPerSeal) {
  Drbg d(9);
  const Bytes msg = to_bytes("same");
  EXPECT_NE(envelope_seal(key().pub, msg, d), envelope_seal(key().pub, msg, d));
}

}  // namespace
}  // namespace whisper::crypto

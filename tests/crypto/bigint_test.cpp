#include "crypto/bigint.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace whisper::crypto {
namespace {

BigInt random_bigint(Rng& rng, std::size_t max_bytes) {
  const std::size_t n = 1 + static_cast<std::size_t>(rng.next_below(max_bytes));
  Bytes b(n);
  rng.fill_bytes(b.data(), n);
  return BigInt::from_bytes(b);
}

TEST(BigInt, ZeroProperties) {
  BigInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_FALSE(z.is_odd());
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z.to_hex(), "0");
}

TEST(BigInt, SmallArithmetic) {
  EXPECT_EQ(BigInt{2} + BigInt{3}, BigInt{5});
  EXPECT_EQ(BigInt{7} - BigInt{5}, BigInt{2});
  EXPECT_EQ(BigInt{6} * BigInt{7}, BigInt{42});
  EXPECT_EQ(BigInt{100} / BigInt{7}, BigInt{14});
  EXPECT_EQ(BigInt{100} % BigInt{7}, BigInt{2});
}

TEST(BigInt, HexRoundTrip) {
  const std::string hex = "deadbeefcafebabe0123456789abcdef00112233";
  BigInt v = BigInt::from_hex(hex);
  EXPECT_EQ(v.to_hex(), hex);
}

TEST(BigInt, BytesRoundTrip) {
  Bytes b{0x01, 0x02, 0x03, 0xff, 0x00, 0x80};
  BigInt v = BigInt::from_bytes(b);
  EXPECT_EQ(v.to_bytes(), b);
}

TEST(BigInt, PaddedBytes) {
  BigInt v{0x1234};
  Bytes p = v.to_bytes_padded(8);
  ASSERT_EQ(p.size(), 8u);
  EXPECT_EQ(p[6], 0x12);
  EXPECT_EQ(p[7], 0x34);
  EXPECT_EQ(p[0], 0x00);
  EXPECT_EQ(BigInt::from_bytes(p), v);
}

TEST(BigInt, AdditionCarriesAcrossLimbs) {
  BigInt max64 = BigInt::from_hex("ffffffffffffffff");
  EXPECT_EQ((max64 + BigInt{1}).to_hex(), "10000000000000000");
}

TEST(BigInt, MultiplicationKnownValue) {
  // (2^64 - 1)^2 = 2^128 - 2^65 + 1
  BigInt max64 = BigInt::from_hex("ffffffffffffffff");
  EXPECT_EQ((max64 * max64).to_hex(), "fffffffffffffffe0000000000000001");
}

TEST(BigInt, ShiftRoundTrip) {
  BigInt v = BigInt::from_hex("123456789abcdef");
  for (std::size_t s : {1u, 7u, 63u, 64u, 65u, 130u}) {
    EXPECT_EQ((v << s) >> s, v) << "shift " << s;
  }
}

TEST(BigInt, BitAccess) {
  BigInt v{0b1010};
  EXPECT_FALSE(v.bit(0));
  EXPECT_TRUE(v.bit(1));
  EXPECT_FALSE(v.bit(2));
  EXPECT_TRUE(v.bit(3));
  EXPECT_FALSE(v.bit(1000));
}

TEST(BigInt, CompareOrdering) {
  BigInt a = BigInt::from_hex("ffffffffffffffff");
  BigInt b = BigInt::from_hex("10000000000000000");
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_LE(a, a);
  EXPECT_GE(b, b);
}

// Property: a = (a/b)*b + a%b, and a%b < b.
TEST(BigInt, DivModInvariantRandom) {
  Rng rng(12345);
  for (int i = 0; i < 300; ++i) {
    BigInt a = random_bigint(rng, 64);
    BigInt b = random_bigint(rng, 32);
    if (b.is_zero()) b = BigInt{1};
    auto [q, r] = a.divmod(b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r, b);
  }
}

TEST(BigInt, DivModEdgeCases) {
  BigInt a = BigInt::from_hex("ffffffffffffffffffffffffffffffff");
  // Divide by itself.
  auto [q1, r1] = a.divmod(a);
  EXPECT_EQ(q1, BigInt{1});
  EXPECT_TRUE(r1.is_zero());
  // Dividend smaller than divisor.
  auto [q2, r2] = BigInt{5}.divmod(a);
  EXPECT_TRUE(q2.is_zero());
  EXPECT_EQ(r2, BigInt{5});
  // Divide by one.
  auto [q3, r3] = a.divmod(BigInt{1});
  EXPECT_EQ(q3, a);
  EXPECT_TRUE(r3.is_zero());
}

// Exercises the rare Knuth-D add-back branch via dividends shaped to make
// the initial quotient estimate one too high.
TEST(BigInt, DivModStressNearBoundary) {
  Rng rng(777);
  for (int i = 0; i < 200; ++i) {
    // b with high limb pattern close to 2^64.
    Bytes bb(24, 0xff);
    rng.fill_bytes(bb.data() + 8, 16);
    BigInt b = BigInt::from_bytes(bb);
    BigInt q_true = random_bigint(rng, 16);
    BigInt r_true = random_bigint(rng, 16) % b;
    BigInt a = q_true * b + r_true;
    auto [q, r] = a.divmod(b);
    EXPECT_EQ(q, q_true);
    EXPECT_EQ(r, r_true);
  }
}

TEST(BigInt, ModU64MatchesDivMod) {
  Rng rng(999);
  for (int i = 0; i < 200; ++i) {
    BigInt a = random_bigint(rng, 40);
    std::uint64_t m = rng.next_u64() | 1;
    EXPECT_EQ(BigInt{a.mod_u64(m)}, a % BigInt{m});
  }
}

TEST(BigInt, ModExpKnownValues) {
  // 2^10 mod 1000 = 24
  EXPECT_EQ(BigInt{2}.modexp(BigInt{10}, BigInt{1001}), BigInt{1024 % 1001});
  // Fermat: a^(p-1) = 1 mod p for prime p.
  const BigInt p{1000003};
  EXPECT_EQ(BigInt{12345}.modexp(p - BigInt{1}, p), BigInt{1});
}

TEST(BigInt, ModExpZeroExponent) {
  EXPECT_EQ(BigInt{5}.modexp(BigInt{}, BigInt{7}), BigInt{1});
}

TEST(BigInt, ModExpOneModulus) {
  EXPECT_TRUE(BigInt{5}.modexp(BigInt{3}, BigInt{1}).is_zero());
}

// Property: Montgomery modexp agrees with naive square-and-multiply + divmod.
TEST(BigInt, ModExpMatchesNaive) {
  Rng rng(2024);
  for (int i = 0; i < 30; ++i) {
    BigInt base = random_bigint(rng, 24);
    BigInt exp = random_bigint(rng, 3);
    BigInt mod = random_bigint(rng, 16);
    if (!mod.is_odd()) mod = mod + BigInt{1};
    if (mod <= BigInt{1}) mod = BigInt{3};

    // Naive reference.
    BigInt acc{1};
    for (std::size_t b = exp.bit_length(); b-- > 0;) {
      acc = (acc * acc) % mod;
      if (exp.bit(b)) acc = (acc * base) % mod;
    }
    EXPECT_EQ(base.modexp(exp, mod), acc);
  }
}

TEST(BigInt, ModInvBasics) {
  // 3 * 5 = 15 = 1 mod 7
  EXPECT_EQ(BigInt{3}.modinv(BigInt{7}), BigInt{5});
  // Non-invertible: gcd(6, 9) = 3.
  EXPECT_TRUE(BigInt{6}.modinv(BigInt{9}).is_zero());
}

TEST(BigInt, ModInvProperty) {
  Rng rng(555);
  for (int i = 0; i < 100; ++i) {
    BigInt m = random_bigint(rng, 24);
    if (m <= BigInt{2}) continue;
    BigInt a = random_bigint(rng, 24) % m;
    if (a.is_zero()) continue;
    BigInt inv = a.modinv(m);
    if (inv.is_zero()) {
      EXPECT_NE(BigInt::gcd(a, m), BigInt{1});
    } else {
      EXPECT_EQ((a * inv) % m, BigInt{1});
      EXPECT_LT(inv, m);
    }
  }
}

TEST(BigInt, GcdKnownValues) {
  EXPECT_EQ(BigInt::gcd(BigInt{48}, BigInt{18}), BigInt{6});
  EXPECT_EQ(BigInt::gcd(BigInt{17}, BigInt{13}), BigInt{1});
  EXPECT_EQ(BigInt::gcd(BigInt{0}, BigInt{5}), BigInt{5});
}

TEST(BigInt, SubtractionToZero) {
  BigInt a = BigInt::from_hex("123456789abcdef0123456789");
  EXPECT_TRUE((a - a).is_zero());
}

TEST(BigInt, MulByZero) {
  BigInt a = BigInt::from_hex("ffffffffffffffffffff");
  EXPECT_TRUE((a * BigInt{}).is_zero());
  EXPECT_TRUE((BigInt{} * a).is_zero());
}

// Property: (a + b) - b == a for random values.
TEST(BigInt, AddSubInverse) {
  Rng rng(31337);
  for (int i = 0; i < 200; ++i) {
    BigInt a = random_bigint(rng, 48);
    BigInt b = random_bigint(rng, 48);
    EXPECT_EQ((a + b) - b, a);
  }
}

// Property: multiplication is commutative and distributes over addition.
TEST(BigInt, MulAlgebraicProperties) {
  Rng rng(808);
  for (int i = 0; i < 100; ++i) {
    BigInt a = random_bigint(rng, 20);
    BigInt b = random_bigint(rng, 20);
    BigInt c = random_bigint(rng, 20);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ(a * (b + c), a * b + a * c);
  }
}

}  // namespace
}  // namespace whisper::crypto

#include "crypto/onion.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace whisper::crypto {
namespace {

// A small set of shared keypairs (keygen is the slow part).
const std::vector<RsaKeyPair>& keys() {
  static const std::vector<RsaKeyPair> ks = [] {
    std::vector<RsaKeyPair> v;
    Drbg d(404);
    for (int i = 0; i < 5; ++i) v.push_back(RsaKeyPair::generate(512, d));
    return v;
  }();
  return ks;
}

OnionHop hop(std::size_t i) {
  return OnionHop{NodeId{i + 1}, keys()[i].pub,
                  Endpoint{static_cast<std::uint32_t>(0x01000000 + i), 5000}};
}

TEST(Onion, SingleHopPathIsDirectSeal) {
  Drbg d(1);
  const Bytes content = to_bytes("direct message");
  std::vector<OnionHop> path{hop(0)};
  const OnionPacket pkt = onion_build(path, content, d);
  auto peel = onion_peel(keys()[0], pkt);
  ASSERT_TRUE(peel.has_value());
  EXPECT_TRUE(peel->is_destination);
  EXPECT_EQ(peel->content, content);
}

// The paper's configuration: path S -> A -> B -> D (two mixes).
TEST(Onion, TwoMixPathDelivers) {
  Drbg d(2);
  const Bytes content = to_bytes("confidential group traffic");
  std::vector<OnionHop> path{hop(0), hop(1), hop(2)};  // A, B, D
  OnionPacket pkt = onion_build(path, content, d);

  auto at_a = onion_peel(keys()[0], pkt);
  ASSERT_TRUE(at_a.has_value());
  EXPECT_FALSE(at_a->is_destination);
  EXPECT_EQ(at_a->next_hop, NodeId{2});
  EXPECT_EQ(at_a->next_addr, hop(1).addr);

  auto at_b = onion_peel(keys()[1], at_a->next_packet);
  ASSERT_TRUE(at_b.has_value());
  EXPECT_FALSE(at_b->is_destination);
  EXPECT_EQ(at_b->next_hop, NodeId{3});

  auto at_d = onion_peel(keys()[2], at_b->next_packet);
  ASSERT_TRUE(at_d.has_value());
  EXPECT_TRUE(at_d->is_destination);
  EXPECT_EQ(at_d->content, content);
}

TEST(Onion, LongPathForCollusionResistance) {
  // f mixes tolerate f-1 colluders (paper footnote 2): exercise f = 4.
  Drbg d(3);
  const Bytes content = to_bytes("extra paranoid");
  std::vector<OnionHop> path{hop(0), hop(1), hop(2), hop(3), hop(4)};
  OnionPacket pkt = onion_build(path, content, d);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    auto peel = onion_peel(keys()[i], pkt);
    ASSERT_TRUE(peel.has_value()) << "hop " << i;
    ASSERT_FALSE(peel->is_destination);
    EXPECT_EQ(peel->next_hop, path[i + 1].id);
    pkt = peel->next_packet;
  }
  auto final = onion_peel(keys()[4], pkt);
  ASSERT_TRUE(final.has_value());
  EXPECT_TRUE(final->is_destination);
  EXPECT_EQ(final->content, content);
}

TEST(Onion, MixCannotReadContent) {
  Drbg d(4);
  const Bytes content = to_bytes("top secret");
  std::vector<OnionHop> path{hop(0), hop(1), hop(2)};
  const OnionPacket pkt = onion_build(path, content, d);
  // The body as seen by mixes is AES-encrypted and never equals the content.
  EXPECT_NE(pkt.body, content);
  auto at_a = onion_peel(keys()[0], pkt);
  ASSERT_TRUE(at_a.has_value());
  EXPECT_NE(at_a->next_packet.body, content);
}

TEST(Onion, MixLearnsOnlyNextHop) {
  Drbg d(5);
  std::vector<OnionHop> path{hop(0), hop(1), hop(2)};
  const OnionPacket pkt = onion_build(path, to_bytes("x"), d);
  auto at_a = onion_peel(keys()[0], pkt);
  ASSERT_TRUE(at_a.has_value());
  // A cannot peel the next layer (it is sealed to B).
  EXPECT_FALSE(onion_peel(keys()[0], at_a->next_packet).has_value());
  // Nor can A peel with D's layer ordering skipped.
  EXPECT_FALSE(onion_peel(keys()[2], pkt).has_value());
}

TEST(Onion, WrongKeyCannotPeel) {
  Drbg d(6);
  std::vector<OnionHop> path{hop(0), hop(1), hop(2)};
  const OnionPacket pkt = onion_build(path, to_bytes("x"), d);
  EXPECT_FALSE(onion_peel(keys()[3], pkt).has_value());
}

TEST(Onion, HeaderShrinksPerHop) {
  Drbg d(7);
  std::vector<OnionHop> path{hop(0), hop(1), hop(2)};
  const OnionPacket pkt = onion_build(path, to_bytes("x"), d);
  auto at_a = onion_peel(keys()[0], pkt);
  ASSERT_TRUE(at_a.has_value());
  EXPECT_LT(at_a->next_packet.header.size(), pkt.header.size());
  // Body is untouched by forwarding.
  EXPECT_EQ(at_a->next_packet.body, pkt.body);
}

TEST(Onion, SerializeRoundTrip) {
  Drbg d(8);
  std::vector<OnionHop> path{hop(0), hop(1)};
  const OnionPacket pkt = onion_build(path, to_bytes("wire"), d);
  const Bytes wire = pkt.serialize();
  EXPECT_EQ(wire.size(), pkt.wire_size());
  auto back = OnionPacket::deserialize(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->header, pkt.header);
  EXPECT_EQ(back->body, pkt.body);
}

TEST(Onion, DeserializeGarbageFails) {
  EXPECT_FALSE(OnionPacket::deserialize(Bytes{1, 2}).has_value());
}

TEST(Onion, EmptyContentSupported) {
  Drbg d(9);
  std::vector<OnionHop> path{hop(0), hop(1), hop(2)};
  OnionPacket pkt = onion_build(path, Bytes{}, d);
  auto a = onion_peel(keys()[0], pkt);
  ASSERT_TRUE(a.has_value());
  auto b = onion_peel(keys()[1], a->next_packet);
  ASSERT_TRUE(b.has_value());
  auto dd = onion_peel(keys()[2], b->next_packet);
  ASSERT_TRUE(dd.has_value());
  EXPECT_TRUE(dd->is_destination);
  EXPECT_TRUE(dd->content.empty());
}

TEST(Onion, LargeContentSurvivesFullPath) {
  Drbg d(10);
  Bytes content(20 * 1024);  // the paper's ~20 KB view exchanges
  d.fill(content.data(), content.size());
  std::vector<OnionHop> path{hop(0), hop(1), hop(2)};
  OnionPacket pkt = onion_build(path, content, d);
  auto a = onion_peel(keys()[0], pkt);
  auto b = onion_peel(keys()[1], a->next_packet);
  auto dd = onion_peel(keys()[2], b->next_packet);
  ASSERT_TRUE(dd.has_value());
  EXPECT_EQ(dd->content, content);
}

TEST(Onion, TamperedBodyDecryptsToGarbage) {
  Drbg d(11);
  const Bytes content = to_bytes("integrity matters");
  std::vector<OnionHop> path{hop(0)};
  OnionPacket pkt = onion_build(path, content, d);
  pkt.body[0] ^= 0xff;
  auto peel = onion_peel(keys()[0], pkt);
  ASSERT_TRUE(peel.has_value());
  EXPECT_NE(peel->content, content);
}

}  // namespace
}  // namespace whisper::crypto

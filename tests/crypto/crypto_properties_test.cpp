// Parameterized property sweeps over the crypto substrate: the same
// invariants checked across key sizes, payload sizes and path lengths.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "crypto/envelope.hpp"
#include "crypto/onion.hpp"
#include "crypto/rsa.hpp"

namespace whisper::crypto {
namespace {

// Shared keypair cache — keygen dominates test time otherwise.
const RsaKeyPair& cached_key(std::size_t bits, std::size_t idx = 0) {
  static std::map<std::pair<std::size_t, std::size_t>, RsaKeyPair> cache;
  auto key = std::make_pair(bits, idx);
  auto it = cache.find(key);
  if (it == cache.end()) {
    Drbg d(9000 + bits * 31 + idx);
    it = cache.emplace(key, RsaKeyPair::generate(bits, d)).first;
  }
  return it->second;
}

// --- RSA across modulus sizes. ---

class RsaSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RsaSizes, EncryptDecryptRoundTrip) {
  const auto& kp = cached_key(GetParam());
  Drbg d(1);
  for (std::size_t len : {0u, 1u, 16u, 32u}) {
    if (len > kp.pub.max_message()) continue;
    Bytes msg(len, 0x42);
    auto pt = rsa_decrypt(kp, rsa_encrypt(kp.pub, msg, d));
    ASSERT_TRUE(pt.has_value()) << GetParam() << " bits, len " << len;
    EXPECT_EQ(*pt, msg);
  }
}

TEST_P(RsaSizes, SignVerifyRoundTrip) {
  const auto& kp = cached_key(GetParam());
  const Bytes msg = to_bytes("sweep message");
  EXPECT_TRUE(rsa_verify(kp.pub, msg, rsa_sign(kp, msg)));
}

TEST_P(RsaSizes, CiphertextHasBlockSize) {
  const auto& kp = cached_key(GetParam());
  Drbg d(2);
  EXPECT_EQ(rsa_encrypt(kp.pub, Bytes(8, 1), d).size(), GetParam() / 8);
}

TEST_P(RsaSizes, CrossKeyVerificationFails) {
  const auto& kp = cached_key(GetParam());
  const auto& other = cached_key(GetParam(), 1);
  const Bytes msg = to_bytes("cross");
  EXPECT_FALSE(rsa_verify(other.pub, msg, rsa_sign(kp, msg)));
}

TEST_P(RsaSizes, PublicKeyWireRoundTrip) {
  const auto& kp = cached_key(GetParam());
  auto back = RsaPublicKey::deserialize(kp.pub.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, kp.pub);
}

INSTANTIATE_TEST_SUITE_P(KeySizes, RsaSizes, ::testing::Values(512u, 768u, 1024u));

// --- Envelope across payload sizes. ---

class EnvelopeSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EnvelopeSizes, SealOpenRoundTrip) {
  const auto& kp = cached_key(512);
  Drbg d(3);
  Bytes payload(GetParam());
  d.fill(payload.data(), payload.size());
  auto opened = envelope_open(kp, envelope_seal(kp.pub, payload, d));
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, payload);
}

TEST_P(EnvelopeSizes, CiphertextSizeIsPredicted) {
  const auto& kp = cached_key(512);
  Drbg d(4);
  EXPECT_EQ(envelope_seal(kp.pub, Bytes(GetParam(), 0x1), d).size(),
            envelope_size(kp.pub, GetParam()));
}

INSTANTIATE_TEST_SUITE_P(PayloadSizes, EnvelopeSizes,
                         ::testing::Values(0u, 1u, 15u, 16u, 17u, 255u, 4096u, 20480u));

// --- Onion across path lengths and payload sizes. ---

class OnionPaths : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(OnionPaths, FullPathDelivery) {
  const auto [hops, payload_len] = GetParam();
  Drbg d(5);
  std::vector<OnionHop> path;
  for (std::size_t i = 0; i < hops; ++i) {
    path.push_back(OnionHop{NodeId{i + 1}, cached_key(512, i).pub,
                            Endpoint{static_cast<std::uint32_t>(i + 1), 1}});
  }
  Bytes content(payload_len);
  d.fill(content.data(), content.size());

  OnionPacket pkt = onion_build(path, content, d);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    auto peel = onion_peel(cached_key(512, i), pkt);
    ASSERT_TRUE(peel.has_value()) << "hop " << i;
    ASSERT_FALSE(peel->is_destination);
    EXPECT_EQ(peel->next_hop, path[i + 1].id);
    EXPECT_EQ(peel->next_addr, path[i + 1].addr);
    pkt = peel->next_packet;
  }
  auto last = onion_peel(cached_key(512, hops - 1), pkt);
  ASSERT_TRUE(last.has_value());
  EXPECT_TRUE(last->is_destination);
  EXPECT_EQ(last->content, content);
}

TEST_P(OnionPaths, EveryLayerOpaqueToOthers) {
  const auto [hops, payload_len] = GetParam();
  Drbg d(6);
  std::vector<OnionHop> path;
  for (std::size_t i = 0; i < hops; ++i) {
    path.push_back(OnionHop{NodeId{i + 1}, cached_key(512, i).pub, Endpoint{}});
  }
  const OnionPacket pkt = onion_build(path, Bytes(payload_len, 0x5c), d);
  // Only the first hop's key opens the outermost layer.
  for (std::size_t i = 1; i < hops; ++i) {
    EXPECT_FALSE(onion_peel(cached_key(512, i), pkt).has_value()) << "key " << i;
  }
}

TEST_P(OnionPaths, HeaderSizeGrowsLinearlyWithHops) {
  const auto [hops, payload_len] = GetParam();
  Drbg d(7);
  std::vector<OnionHop> path;
  for (std::size_t i = 0; i < hops; ++i) {
    path.push_back(OnionHop{NodeId{i + 1}, cached_key(512, i).pub, Endpoint{}});
  }
  const OnionPacket pkt = onion_build(path, Bytes(payload_len, 0), d);
  // Each layer adds one hybrid envelope: RSA block (64) + next-hop id (8) +
  // endpoint (6); innermost layer carries (nil id + key material).
  const std::size_t block = cached_key(512).pub.block_size();
  const std::size_t inner = block + 8 + 32;
  const std::size_t expected = inner + (hops - 1) * (block + 8 + 6);
  EXPECT_EQ(pkt.header.size(), expected);
  // Body is exactly payload-sized (CTR mode).
  EXPECT_EQ(pkt.body.size(), payload_len);
}

INSTANTIATE_TEST_SUITE_P(PathShapes, OnionPaths,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u, 5u),
                                            ::testing::Values(0u, 64u, 20480u)));

// --- Drbg determinism sweep. ---

class DrbgSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DrbgSeeds, SameSeedSameStream) {
  Drbg a(GetParam()), b(GetParam());
  EXPECT_EQ(a.bytes(100), b.bytes(100));
}

TEST_P(DrbgSeeds, DifferentSeedDifferentStream) {
  Drbg a(GetParam()), b(GetParam() + 1);
  EXPECT_NE(a.bytes(100), b.bytes(100));
}

TEST_P(DrbgSeeds, BelowIsUniformish) {
  Drbg d(GetParam());
  int buckets[7] = {};
  for (int i = 0; i < 7000; ++i) ++buckets[d.below(7)];
  for (int b = 0; b < 7; ++b) {
    EXPECT_GT(buckets[b], 800) << "bucket " << b;
    EXPECT_LT(buckets[b], 1200) << "bucket " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DrbgSeeds, ::testing::Values(0ull, 1ull, 0xdeadbeefull));

}  // namespace
}  // namespace whisper::crypto

// Reachability matrix: every combination of NAT types must deliver through
// relays, and hole punching must succeed exactly where the device
// behaviours allow it (cone/cone pairs) and never between two symmetric
// NATs — the emulation decides, the protocol only probes.
#include <gtest/gtest.h>

#include "nat/nat.hpp"
#include "nylon/transport.hpp"

namespace whisper::nylon {
namespace {

using nat::NatType;

class NatMatrix : public ::testing::TestWithParam<std::tuple<NatType, NatType>> {
 protected:
  sim::Simulator sim{13};
  nat::NatFabric fabric{sim};
  sim::Network net{sim, std::make_unique<sim::FixedLatency>(net::kMillisecond)};
  std::vector<std::unique_ptr<Transport>> transports;

  NatMatrix() { net.set_translator(&fabric); }

  Transport& add(std::uint64_t id, NatType type) {
    Endpoint ep = type == NatType::kNone ? fabric.add_public_node()
                                         : fabric.add_natted_node(type);
    transports.push_back(
        std::make_unique<Transport>(sim, net, NodeId{id}, ep, type == NatType::kNone));
    return *transports.back();
  }
};

TEST_P(NatMatrix, BidirectionalDeliveryThroughRelays) {
  const auto [type_a, type_b] = GetParam();
  Transport& relay = add(1, NatType::kNone);
  Transport& a = add(2, type_a);
  Transport& b = add(3, type_b);
  if (type_a != NatType::kNone) a.set_relay(relay.self_card());
  if (type_b != NatType::kNone) b.set_relay(relay.self_card());
  sim.run_until(sim.now() + net::kSecond);

  int a_got = 0, b_got = 0;
  a.register_handler(kTagApp, [&](NodeId, BytesView) { ++a_got; });
  b.register_handler(kTagApp, [&](NodeId, BytesView) { ++b_got; });

  // Several rounds in both directions (punching may reroute midway; every
  // message must still arrive).
  for (int round = 0; round < 4; ++round) {
    EXPECT_TRUE(a.send(b.self_card(), kTagApp, Bytes{1}, net::Proto::kApp));
    EXPECT_TRUE(b.send(a.self_card(), kTagApp, Bytes{2}, net::Proto::kApp));
    sim.run_until(sim.now() + 10 * net::kSecond);
  }
  EXPECT_EQ(a_got, 4);
  EXPECT_EQ(b_got, 4);
}

TEST_P(NatMatrix, HolePunchingMatchesDeviceSemantics) {
  const auto [type_a, type_b] = GetParam();
  Transport& relay = add(1, NatType::kNone);
  Transport& a = add(2, type_a);
  Transport& b = add(3, type_b);
  if (type_a != NatType::kNone) a.set_relay(relay.self_card());
  if (type_b != NatType::kNone) b.set_relay(relay.self_card());
  sim.run_until(sim.now() + net::kSecond);

  for (int round = 0; round < 6; ++round) {
    a.send(b.self_card(), kTagApp, Bytes{1}, net::Proto::kApp);
    b.send(a.self_card(), kTagApp, Bytes{2}, net::Proto::kApp);
    sim.run_until(sim.now() + 10 * net::kSecond);
  }

  auto is_cone = [](NatType t) {
    return t == NatType::kFullCone || t == NatType::kRestrictedCone ||
           t == NatType::kPortRestrictedCone;
  };
  if ((is_cone(type_a) || type_a == NatType::kNone) &&
      (is_cone(type_b) || type_b == NatType::kNone)) {
    // Cone/cone (or involving a public node): punching converges both ways.
    EXPECT_TRUE(a.can_send_direct(NodeId{3}));
    EXPECT_TRUE(b.can_send_direct(NodeId{2}));
  }
  if (type_a == NatType::kSymmetric && type_b == NatType::kSymmetric) {
    // Symmetric/symmetric: per-destination ports make punching impossible.
    EXPECT_FALSE(a.can_send_direct(NodeId{3}));
    EXPECT_FALSE(b.can_send_direct(NodeId{2}));
  }
  // Mixed symmetric/cone pairs: direction-dependent (decided by the
  // emulation); delivery is covered by the relay test either way.
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, NatMatrix,
    ::testing::Combine(::testing::Values(NatType::kNone, NatType::kFullCone,
                                         NatType::kRestrictedCone,
                                         NatType::kPortRestrictedCone, NatType::kSymmetric),
                       ::testing::Values(NatType::kNone, NatType::kFullCone,
                                         NatType::kRestrictedCone,
                                         NatType::kPortRestrictedCone, NatType::kSymmetric)),
    [](const ::testing::TestParamInfo<std::tuple<NatType, NatType>>& info) {
      return std::string(nat::nat_type_name(std::get<0>(info.param))) + "_to_" +
             nat::nat_type_name(std::get<1>(info.param));
    });

}  // namespace
}  // namespace whisper::nylon

#include "nylon/transport.hpp"

#include <gtest/gtest.h>

#include "nat/nat.hpp"

namespace whisper::nylon {
namespace {

// Harness: a network with a NAT fabric and manually wired transports.
struct TransportFixture : ::testing::Test {
  sim::Simulator sim{7};
  nat::NatFabric fabric{sim};
  sim::Network net{sim, std::make_unique<sim::FixedLatency>(net::kMillisecond)};

  std::vector<std::unique_ptr<Transport>> transports;

  TransportFixture() { net.set_translator(&fabric); }

  Transport& add_public(std::uint64_t id) {
    Endpoint ep = fabric.add_public_node();
    transports.push_back(std::make_unique<Transport>(sim, net, NodeId{id}, ep, true));
    return *transports.back();
  }

  Transport& add_public_inc(std::uint64_t id, std::uint32_t incarnation,
                            TransportConfig cfg = {}) {
    Endpoint ep = fabric.add_public_node();
    cfg.incarnation = incarnation;
    transports.push_back(std::make_unique<Transport>(sim, net, NodeId{id}, ep, true, cfg));
    return *transports.back();
  }

  Transport& add_natted(std::uint64_t id, nat::NatType type) {
    Endpoint ep = fabric.add_natted_node(type);
    transports.push_back(std::make_unique<Transport>(sim, net, NodeId{id}, ep, false));
    return *transports.back();
  }

  static std::vector<std::pair<NodeId, Bytes>>& inbox(Transport& t) {
    static std::unordered_map<Transport*, std::vector<std::pair<NodeId, Bytes>>> boxes;
    return boxes[&t];
  }

  void collect(Transport& t) {
    inbox(t).clear();
    t.register_handler(kTagApp, [&t](NodeId from, BytesView p) {
      inbox(t).emplace_back(from, Bytes(p.begin(), p.end()));
    });
  }
};

TEST_F(TransportFixture, PublicToPublicDirect) {
  Transport& a = add_public(1);
  Transport& b = add_public(2);
  collect(b);
  EXPECT_TRUE(a.send(b.self_card(), kTagApp, Bytes{9}, net::Proto::kApp));
  sim.run_until(sim.now() + 10 * net::kSecond);
  ASSERT_EQ(inbox(b).size(), 1u);
  EXPECT_EQ(inbox(b)[0].first, NodeId{1});
  EXPECT_EQ(inbox(b)[0].second, Bytes{9});
}

TEST_F(TransportFixture, SelfCardReflectsRole) {
  Transport& p = add_public(1);
  EXPECT_TRUE(p.self_card().is_public);
  EXPECT_TRUE(p.self_card().relay_id.is_nil());

  Transport& relay = add_public(2);
  Transport& n = add_natted(3, nat::NatType::kFullCone);
  n.set_relay(relay.self_card());
  EXPECT_FALSE(n.self_card().is_public);
  EXPECT_EQ(n.self_card().relay_id, NodeId{2});
  EXPECT_EQ(n.self_card().addr, relay.self_card().addr);
}

TEST_F(TransportFixture, NattedReachableViaRelay) {
  Transport& relay = add_public(1);
  Transport& n = add_natted(2, nat::NatType::kSymmetric);  // sym: relay is the only way
  Transport& sender = add_public(3);
  n.set_relay(relay.self_card());
  sim.run_until(sim.now() + net::kSecond);  // registration settles
  collect(n);
  EXPECT_TRUE(sender.send(n.self_card(), kTagApp, Bytes{5}, net::Proto::kApp));
  sim.run_until(sim.now() + 10 * net::kSecond);
  ASSERT_EQ(inbox(n).size(), 1u);
  EXPECT_EQ(inbox(n)[0].first, NodeId{3});
}

TEST_F(TransportFixture, RelayLostWithoutAcks) {
  Transport& relay = add_public(1);
  Transport& n = add_natted(2, nat::NatType::kFullCone);
  EXPECT_TRUE(n.relay_lost());  // no relay set yet
  n.set_relay(relay.self_card());
  sim.run_until(sim.now() + net::kSecond);
  EXPECT_FALSE(n.relay_lost());
  // Kill the relay: keepalives go unanswered.
  relay.shutdown();
  sim.run_until(sim.now() + 5 * net::kMinute);
  EXPECT_TRUE(n.relay_lost());
}

TEST_F(TransportFixture, RegistrationExpiresAtRelay) {
  Transport& relay = add_public(1);
  Transport& n = add_natted(2, nat::NatType::kFullCone);
  n.set_relay(relay.self_card());
  sim.run_until(sim.now() + net::kSecond);
  EXPECT_EQ(relay.relayed_registrations(), 1u);
  // Stop the N-node: registration decays.
  n.shutdown();
  sim.run_until(sim.now() + 3 * net::kMinute);
  EXPECT_EQ(relay.relayed_registrations(), 0u);
}

TEST_F(TransportFixture, HolePunchingConeToCone) {
  Transport& relay = add_public(1);
  Transport& a = add_natted(2, nat::NatType::kFullCone);
  Transport& b = add_natted(3, nat::NatType::kRestrictedCone);
  a.set_relay(relay.self_card());
  b.set_relay(relay.self_card());
  sim.run_until(sim.now() + net::kSecond);
  collect(a);
  collect(b);

  // Exchange a few messages via relays; probes piggyback and punch.
  for (int i = 0; i < 3; ++i) {
    a.send(b.self_card(), kTagApp, Bytes{1}, net::Proto::kApp);
    b.send(a.self_card(), kTagApp, Bytes{2}, net::Proto::kApp);
    sim.run_until(sim.now() + 10 * net::kSecond);
  }
  EXPECT_TRUE(a.can_send_direct(NodeId{3}));
  EXPECT_TRUE(b.can_send_direct(NodeId{2}));
  // And the direct route actually delivers.
  const std::size_t before = inbox(b).size();
  a.send(b.self_card(), kTagApp, Bytes{7}, net::Proto::kApp);
  sim.run_until(sim.now() + 10 * net::kSecond);
  EXPECT_EQ(inbox(b).size(), before + 1);
}

TEST_F(TransportFixture, NoDirectRouteBetweenSymmetricPair) {
  Transport& relay = add_public(1);
  Transport& a = add_natted(2, nat::NatType::kSymmetric);
  Transport& b = add_natted(3, nat::NatType::kSymmetric);
  a.set_relay(relay.self_card());
  b.set_relay(relay.self_card());
  sim.run_until(sim.now() + net::kSecond);
  collect(b);
  for (int i = 0; i < 5; ++i) {
    a.send(b.self_card(), kTagApp, Bytes{1}, net::Proto::kApp);
    b.send(a.self_card(), kTagApp, Bytes{2}, net::Proto::kApp);
    sim.run_until(sim.now() + 10 * net::kSecond);
  }
  // Punching cannot work through two symmetric NATs...
  EXPECT_FALSE(a.can_send_direct(NodeId{3}));
  // ...but relay delivery still does.
  const std::size_t before = inbox(b).size();
  a.send(b.self_card(), kTagApp, Bytes{9}, net::Proto::kApp);
  sim.run_until(sim.now() + 10 * net::kSecond);
  EXPECT_EQ(inbox(b).size(), before + 1);
}

TEST_F(TransportFixture, NattedToNattedViaRelays) {
  Transport& r1 = add_public(1);
  Transport& r2 = add_public(2);
  Transport& a = add_natted(3, nat::NatType::kSymmetric);
  Transport& b = add_natted(4, nat::NatType::kPortRestrictedCone);
  a.set_relay(r1.self_card());
  b.set_relay(r2.self_card());
  sim.run_until(sim.now() + net::kSecond);
  collect(b);
  EXPECT_TRUE(a.send(b.self_card(), kTagApp, Bytes{1, 2}, net::Proto::kApp));
  sim.run_until(sim.now() + 10 * net::kSecond);
  ASSERT_EQ(inbox(b).size(), 1u);
  EXPECT_EQ(inbox(b)[0].first, NodeId{3});
}

TEST_F(TransportFixture, ShutdownStopsDelivery) {
  Transport& a = add_public(1);
  Transport& b = add_public(2);
  collect(b);
  b.shutdown();
  a.send(b.self_card(), kTagApp, Bytes{1}, net::Proto::kApp);
  sim.run_until(sim.now() + 10 * net::kSecond);
  EXPECT_TRUE(inbox(b).empty());
  EXPECT_FALSE(b.running());
}

TEST_F(TransportFixture, SendToNilCardFails) {
  Transport& a = add_public(1);
  pss::ContactCard nil_card;
  EXPECT_FALSE(a.send(nil_card, kTagApp, Bytes{1}, net::Proto::kApp));
}

TEST_F(TransportFixture, UnknownTagSilentlyIgnored) {
  Transport& a = add_public(1);
  Transport& b = add_public(2);
  // No handler registered for kTagApp on b.
  EXPECT_TRUE(a.send(b.self_card(), kTagApp, Bytes{1}, net::Proto::kApp));
  sim.run();  // must not crash
}

TEST_F(TransportFixture, RelayServesItsOwnRegistrants) {
  // The relay itself sends to a node registered with it (card case 3).
  Transport& relay = add_public(1);
  Transport& n = add_natted(2, nat::NatType::kSymmetric);
  n.set_relay(relay.self_card());
  sim.run_until(sim.now() + net::kSecond);
  collect(n);
  EXPECT_TRUE(relay.send(n.self_card(), kTagApp, Bytes{3}, net::Proto::kApp));
  sim.run_until(sim.now() + 10 * net::kSecond);
  ASSERT_EQ(inbox(n).size(), 1u);
}

TEST_F(TransportFixture, RelayCrashDetectedWithinThresholdKeepalives) {
  // Regression for relay failover: a crashed relay must be declared lost
  // (and on_relay_lost fired) within relay_loss_threshold keepalive periods
  // of the crash — detection must not be slowed by the backoff logic.
  Transport& relay = add_public(1);
  Transport& n = add_natted(2, nat::NatType::kFullCone);
  n.set_relay(relay.self_card());
  sim.run_until(sim.now() + net::kSecond);
  ASSERT_FALSE(n.relay_lost());

  net::Time detected_at = 0;
  n.on_relay_lost = [&] { detected_at = sim.now(); };
  const net::Time crash_at = sim.now();
  relay.shutdown();
  sim.run_until(sim.now() + 10 * net::kMinute);

  ASSERT_NE(detected_at, 0u) << "on_relay_lost never fired";
  const TransportConfig cfg{};  // defaults match what add_natted built
  EXPECT_LE(detected_at - crash_at,
            static_cast<net::Time>(cfg.relay_loss_threshold) * cfg.keepalive_period +
                net::kSecond);
  EXPECT_EQ(n.relays_lost(), 1u);
}

TEST_F(TransportFixture, RelayFailoverReRegistersAndRestoresDelivery) {
  Transport& dead_relay = add_public(1);
  Transport& backup = add_public(2);
  Transport& n = add_natted(3, nat::NatType::kSymmetric);  // relay is the only path
  Transport& sender = add_public(4);
  n.set_relay(dead_relay.self_card());
  sim.run_until(sim.now() + net::kSecond);

  // Failover hook the PSS would install: promote the backup on loss.
  n.on_relay_lost = [&] { n.set_relay(backup.self_card()); };
  dead_relay.shutdown();
  sim.run_until(sim.now() + 10 * net::kMinute);

  EXPECT_FALSE(n.relay_lost());
  EXPECT_EQ(n.relay_id(), NodeId{2});
  EXPECT_EQ(backup.relayed_registrations(), 1u);
  collect(n);
  EXPECT_TRUE(sender.send(n.self_card(), kTagApp, Bytes{8}, net::Proto::kApp));
  sim.run_until(sim.now() + 10 * net::kSecond);
  ASSERT_EQ(inbox(n).size(), 1u);
  EXPECT_EQ(inbox(n)[0].second, Bytes{8});
}

TEST_F(TransportFixture, KeepalivesBackOffAfterRelayLoss) {
  Transport& relay = add_public(1);
  Transport& n = add_natted(2, nat::NatType::kFullCone);
  n.set_relay(relay.self_card());
  sim.run_until(sim.now() + net::kSecond);
  relay.shutdown();
  sim.run_until(sim.now() + 5 * net::kMinute);  // loss declared, backoff engaged
  ASSERT_TRUE(n.relay_lost());

  // With no failover wired, keepalives must decay towards the backoff
  // ceiling instead of hammering the dead address at full cadence.
  const std::uint64_t before = net.packets_sent();
  sim.run_until(sim.now() + 20 * net::kMinute);
  const std::uint64_t pings = net.packets_sent() - before;
  const TransportConfig cfg{};
  const std::uint64_t full_cadence = 20 * net::kMinute / cfg.keepalive_period;  // 40
  EXPECT_LT(pings, full_cadence / 3);
  EXPECT_GE(pings, 2u);  // but it keeps probing: the relay may come back
}

TEST_F(TransportFixture, RelayRecoveryResumesNormalKeepaliveCadence) {
  // If the "lost" relay answers again (e.g. a healed partition), the
  // backed-off keepalive timer must snap back to the normal period.
  Transport& relay = add_public(1);
  Transport& n = add_natted(2, nat::NatType::kFullCone);
  n.set_relay(relay.self_card());
  sim.run_until(sim.now() + net::kSecond);
  relay.shutdown();
  sim.run_until(sim.now() + 5 * net::kMinute);
  ASSERT_TRUE(n.relay_lost());

  // "Reboot" the relay at the same endpoint: re-attach a fresh transport.
  Transport relay2(sim, net, NodeId{1}, relay.internal_endpoint(), true);
  sim.run_until(sim.now() + 15 * net::kMinute);  // next backed-off ping gets acked
  EXPECT_FALSE(n.relay_lost());
  EXPECT_EQ(relay2.relayed_registrations(), 1u);
}

// --- Incarnation epochs (crash-recovery, DESIGN.md §14). ---

TEST_F(TransportFixture, PeerRestartBumpsCounterAndFiresCallback) {
  Transport& a = add_public(1);
  Transport& b1 = add_public_inc(2, 1);
  collect(a);
  EXPECT_TRUE(b1.send(a.self_card(), kTagApp, Bytes{1}, net::Proto::kApp));
  sim.run_until(sim.now() + 10 * net::kSecond);
  ASSERT_EQ(inbox(a).size(), 1u);
  EXPECT_EQ(a.peer_restarts(), 0u);

  NodeId restarted = kNilNode;
  a.on_peer_restart = [&](NodeId peer) { restarted = peer; };
  // kill -9 and reboot at the same endpoint with the epoch bumped.
  const Endpoint ep = b1.internal_endpoint();
  b1.shutdown();
  TransportConfig cfg;
  cfg.incarnation = 2;
  Transport b2(sim, net, NodeId{2}, ep, true, cfg);
  EXPECT_TRUE(b2.send(a.self_card(), kTagApp, Bytes{2}, net::Proto::kApp));
  sim.run_until(sim.now() + 10 * net::kSecond);
  // The reborn peer's frame is delivered AND recognized as a restart.
  ASSERT_EQ(inbox(a).size(), 2u);
  EXPECT_EQ(a.peer_restarts(), 1u);
  EXPECT_EQ(restarted, NodeId{2});
  EXPECT_EQ(a.stale_incarnation_rejects(), 0u);
}

TEST_F(TransportFixture, PreCrashStragglersAreDroppedAsStale) {
  Transport& a = add_public(1);
  Transport& b_new = add_public_inc(2, 2);
  collect(a);
  EXPECT_TRUE(b_new.send(a.self_card(), kTagApp, Bytes{2}, net::Proto::kApp));
  sim.run_until(sim.now() + 10 * net::kSecond);
  ASSERT_EQ(inbox(a).size(), 1u);

  // A delayed frame from the peer's previous life (same id, older epoch)
  // surfaces afterwards: it must be dropped, not delivered, and must not
  // count as a "restart" either.
  Transport& b_old = add_public_inc(2, 1);
  EXPECT_TRUE(b_old.send(a.self_card(), kTagApp, Bytes{1}, net::Proto::kApp));
  sim.run_until(sim.now() + 10 * net::kSecond);
  EXPECT_EQ(inbox(a).size(), 1u);
  EXPECT_EQ(a.stale_incarnation_rejects(), 1u);
  EXPECT_EQ(a.peer_restarts(), 0u);
}

TEST_F(TransportFixture, EpochlessPeersAreNeverStale) {
  // Nodes without durable state send incarnation 0 and must interoperate
  // unchanged: no tracking, no staleness, no restart signals — even when
  // such a node reboots at the same endpoint.
  Transport& a = add_public(1);
  Transport& b1 = add_public(2);
  collect(a);
  EXPECT_TRUE(b1.send(a.self_card(), kTagApp, Bytes{1}, net::Proto::kApp));
  sim.run_until(sim.now() + 10 * net::kSecond);
  const Endpoint ep = b1.internal_endpoint();
  b1.shutdown();
  Transport b2(sim, net, NodeId{2}, ep, true);
  EXPECT_TRUE(b2.send(a.self_card(), kTagApp, Bytes{2}, net::Proto::kApp));
  sim.run_until(sim.now() + 10 * net::kSecond);
  EXPECT_EQ(inbox(a).size(), 2u);
  EXPECT_EQ(a.peer_restarts(), 0u);
  EXPECT_EQ(a.stale_incarnation_rejects(), 0u);
}

TEST_F(TransportFixture, FirstNonzeroEpochIsNotARestart) {
  // A peer that upgrades from epochless (0) to durable state (nonzero)
  // starts being tracked without a spurious restart signal.
  Transport& a = add_public(1);
  Transport& b_epochless = add_public(2);
  collect(a);
  EXPECT_TRUE(b_epochless.send(a.self_card(), kTagApp, Bytes{1}, net::Proto::kApp));
  sim.run_until(sim.now() + 10 * net::kSecond);
  Transport& b_durable = add_public_inc(2, 5);
  EXPECT_TRUE(b_durable.send(a.self_card(), kTagApp, Bytes{2}, net::Proto::kApp));
  sim.run_until(sim.now() + 10 * net::kSecond);
  EXPECT_EQ(inbox(a).size(), 2u);
  EXPECT_EQ(a.peer_restarts(), 0u);
}

TEST_F(TransportFixture, PeerEpochTableIsHardCapped) {
  // The epoch table is peer-driven state: an id-spraying adversary must not
  // grow it without bound. Overflow evicts the least recently seen entry.
  TransportConfig cfg;
  cfg.max_peer_incarnations = 2;
  Transport& a = add_public_inc(1, 1, cfg);
  collect(a);
  for (std::uint64_t id = 2; id <= 4; ++id) {
    Transport& sender = add_public_inc(id, 1);
    EXPECT_TRUE(sender.send(a.self_card(), kTagApp, Bytes{1}, net::Proto::kApp));
    sim.run_until(sim.now() + 10 * net::kSecond);
  }
  EXPECT_EQ(inbox(a).size(), 3u);      // delivery unaffected by eviction
  EXPECT_GE(a.cap_evictions(), 1u);    // the table stayed within its cap
}

}  // namespace
}  // namespace whisper::nylon

#include "nylon/pss.hpp"

#include <gtest/gtest.h>

#include "pss/metrics.hpp"
#include "whisper/testbed.hpp"

namespace whisper::nylon {
namespace {

TestbedConfig small_config(std::size_t n, std::size_t pi = 0) {
  TestbedConfig cfg;
  cfg.initial_nodes = n;
  cfg.node.pss.pi_min_public = pi;
  cfg.node.rsa_bits = 512;
  cfg.seed = 11;
  return cfg;
}

TEST(NylonPss, ViewsFillUp) {
  WhisperTestbed tb(small_config(30));
  tb.run_for(2 * net::kMinute);
  for (WhisperNode* n : tb.alive_nodes()) {
    EXPECT_GE(n->pss().view().size(), 5u) << n->id().str();
  }
}

TEST(NylonPss, ExchangesComplete) {
  WhisperTestbed tb(small_config(30));
  tb.run_for(3 * net::kMinute);
  std::uint64_t initiated = 0, completed = 0;
  for (WhisperNode* n : tb.alive_nodes()) {
    initiated += n->pss().exchanges_initiated();
    completed += n->pss().exchanges_completed();
  }
  EXPECT_GT(initiated, 0u);
  // The overwhelming majority of exchanges succeed in a stable network.
  EXPECT_GT(static_cast<double>(completed), 0.8 * static_cast<double>(initiated));
}

TEST(NylonPss, OverlayConnected) {
  WhisperTestbed tb(small_config(40));
  tb.run_for(5 * net::kMinute);
  auto graph = tb.overlay_snapshot();
  const double reachable = pss::reachable_fraction(graph, tb.alive_nodes()[0]->id());
  EXPECT_GT(reachable, 0.95);
}

TEST(NylonPss, ViewsContainNoSelfEntries) {
  WhisperTestbed tb(small_config(20));
  tb.run_for(3 * net::kMinute);
  for (WhisperNode* n : tb.alive_nodes()) {
    EXPECT_FALSE(n->pss().view().contains(n->id()));
  }
}

TEST(NylonPss, PiBiasKeepsPublicNodesInViews) {
  WhisperTestbed tb(small_config(50, /*pi=*/3));
  tb.run_for(5 * net::kMinute);
  std::size_t satisfied = 0, total = 0;
  for (WhisperNode* n : tb.alive_nodes()) {
    ++total;
    if (n->pss().view().count_public() >= 3) ++satisfied;
  }
  // Nearly all nodes keep >= Π P-nodes in the view.
  EXPECT_GT(static_cast<double>(satisfied), 0.9 * static_cast<double>(total));
}

TEST(NylonPss, FailedNodesHealedFromViews) {
  WhisperTestbed tb(small_config(30));
  tb.run_for(3 * net::kMinute);
  // Kill a node and let the protocol heal.
  const NodeId victim = tb.alive_nodes()[5]->id();
  tb.kill_node(victim);
  tb.run_for(5 * net::kMinute);
  std::size_t refs = 0;
  for (WhisperNode* n : tb.alive_nodes()) {
    if (n->pss().view().contains(victim)) ++refs;
  }
  // The dead node disappears from (nearly) all views within a few cycles.
  EXPECT_LE(refs, 2u);
}

TEST(NylonPss, NattedNodeRepairsLostRelay) {
  WhisperTestbed tb(small_config(30));
  tb.run_for(3 * net::kMinute);
  // Find a natted node and kill its relay.
  WhisperNode* natted = nullptr;
  for (WhisperNode* n : tb.alive_nodes()) {
    if (!n->is_public()) {
      natted = n;
      break;
    }
  }
  ASSERT_NE(natted, nullptr);
  const NodeId old_relay = natted->transport().relay_id();
  ASSERT_FALSE(old_relay.is_nil());
  tb.kill_node(old_relay);
  tb.run_for(10 * net::kMinute);
  EXPECT_FALSE(natted->transport().relay_lost());
  EXPECT_NE(natted->transport().relay_id(), old_relay);
}

TEST(NylonPss, InDegreeBalancedWithoutBias) {
  WhisperTestbed tb(small_config(60));
  tb.run_for(6 * net::kMinute);
  auto graph = tb.overlay_snapshot();
  auto degrees = pss::in_degrees(graph);
  double sum = 0;
  std::int64_t max_deg = 0;
  for (const auto& [id, d] : degrees) {
    sum += static_cast<double>(d);
    max_deg = std::max(max_deg, d);
  }
  const double mean = sum / static_cast<double>(degrees.size());
  EXPECT_GT(mean, 5.0);
  // No node should be wildly over-referenced in a healthy random overlay.
  EXPECT_LT(static_cast<double>(max_deg), mean * 6);
}

}  // namespace
}  // namespace whisper::nylon

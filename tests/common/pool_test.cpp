// FlatPool / Arena / DenseMap: the flat-state primitives behind the
// sharded 100k-node testbed. The pool tests mirror the simulator's
// slot/generation contract: exhaustion is a null handle, released slots are
// reused, and handles minted for earlier occupants go stale.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/arena.hpp"
#include "common/densemap.hpp"
#include "common/ids.hpp"
#include "common/pool.hpp"

namespace whisper {
namespace {

struct Tracked {
  static int live;
  int value;
  explicit Tracked(int v) : value(v) { ++live; }
  ~Tracked() { --live; }
};
int Tracked::live = 0;

TEST(FlatPool, AcquireGetRelease) {
  FlatPool<int> pool(4);
  const PoolHandle h = pool.acquire(42);
  ASSERT_NE(h, kNullPoolHandle);
  ASSERT_NE(pool.get(h), nullptr);
  EXPECT_EQ(*pool.get(h), 42);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_TRUE(pool.release(h));
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.get(h), nullptr);
}

TEST(FlatPool, ExhaustionReturnsNullHandle) {
  FlatPool<int> pool(2);
  const PoolHandle a = pool.acquire(1);
  const PoolHandle b = pool.acquire(2);
  ASSERT_NE(a, kNullPoolHandle);
  ASSERT_NE(b, kNullPoolHandle);
  EXPECT_TRUE(pool.full());
  EXPECT_EQ(pool.acquire(3), kNullPoolHandle);
  // Releasing makes room again.
  EXPECT_TRUE(pool.release(a));
  EXPECT_NE(pool.acquire(4), kNullPoolHandle);
}

TEST(FlatPool, HandleReuseBumpsGeneration) {
  FlatPool<int> pool(1);
  const PoolHandle first = pool.acquire(7);
  ASSERT_TRUE(pool.release(first));
  const PoolHandle second = pool.acquire(8);
  // Same slot, different generation: old handle must not resolve.
  EXPECT_EQ(static_cast<std::uint32_t>(first), static_cast<std::uint32_t>(second));
  EXPECT_NE(first, second);
  EXPECT_EQ(pool.get(first), nullptr);
  ASSERT_NE(pool.get(second), nullptr);
  EXPECT_EQ(*pool.get(second), 8);
}

TEST(FlatPool, StaleReleaseIsRejected) {
  FlatPool<int> pool(1);
  const PoolHandle h = pool.acquire(1);
  EXPECT_TRUE(pool.release(h));
  EXPECT_FALSE(pool.release(h));  // double release: stale generation
  EXPECT_FALSE(pool.release(kNullPoolHandle));
  EXPECT_FALSE(pool.release((1ull << 32) | 999));  // out-of-range slot
  EXPECT_EQ(pool.size(), 0u);
}

TEST(FlatPool, DestructorsRunOnReleaseAndClear) {
  Tracked::live = 0;
  {
    FlatPool<Tracked> pool(8);
    const PoolHandle a = pool.acquire(1);
    pool.acquire(2);
    pool.acquire(3);
    EXPECT_EQ(Tracked::live, 3);
    pool.release(a);
    EXPECT_EQ(Tracked::live, 2);
    pool.clear();
    EXPECT_EQ(Tracked::live, 0);
    pool.acquire(4);  // destroyed by pool destructor
    EXPECT_EQ(Tracked::live, 1);
  }
  EXPECT_EQ(Tracked::live, 0);
}

TEST(Arena, BumpAllocatesAndResets) {
  Arena arena(256);
  int* a = arena.allocate_array<int>(10);
  for (int i = 0; i < 10; ++i) a[i] = i;
  auto* s = arena.create<std::uint64_t>(0xdeadbeefull);
  EXPECT_EQ(*s, 0xdeadbeefull);
  EXPECT_EQ(a[9], 9);
  EXPECT_GE(arena.used(), 10 * sizeof(int) + sizeof(std::uint64_t));
  arena.reset();
  EXPECT_EQ(arena.used(), 0u);
  // Oversized request gets its own chunk rather than failing.
  std::byte* big = static_cast<std::byte*>(arena.allocate(4096));
  big[4095] = std::byte{1};
  EXPECT_GE(arena.chunk_count(), 1u);
}

TEST(Arena, AlignmentHonored) {
  Arena arena(64);
  arena.allocate(1, 1);
  void* p = arena.allocate(8, 32);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 32, 0u);
}

TEST(DenseMap, InsertFindErase) {
  DenseMap<std::uint64_t, std::string> m;
  EXPECT_TRUE(m.empty());
  m[1] = "one";
  m.insert_or_assign(2, "two");
  auto [it, fresh] = m.try_emplace(3, "three");
  EXPECT_TRUE(fresh);
  EXPECT_EQ(it->second, "three");
  EXPECT_FALSE(m.try_emplace(3, "again").second);
  EXPECT_EQ(m.size(), 3u);
  ASSERT_NE(m.find(2), m.end());
  EXPECT_EQ(m.find(2)->second, "two");
  EXPECT_TRUE(m.contains(1));
  EXPECT_EQ(m.erase(2), 1u);
  EXPECT_EQ(m.erase(2), 0u);
  EXPECT_FALSE(m.contains(2));
  EXPECT_EQ(m.size(), 2u);
}

TEST(DenseMap, GrowsThroughRehash) {
  DenseMap<std::uint32_t, std::uint32_t> m;
  for (std::uint32_t i = 0; i < 5000; ++i) m[i] = i * 3;
  EXPECT_EQ(m.size(), 5000u);
  for (std::uint32_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(m.contains(i));
    EXPECT_EQ(m.find(i)->second, i * 3);
  }
  for (std::uint32_t i = 0; i < 5000; i += 2) m.erase(i);
  EXPECT_EQ(m.size(), 2500u);
  for (std::uint32_t i = 1; i < 5000; i += 2) ASSERT_EQ(m.find(i)->second, i * 3);
  // Churn over tombstones: reinsert the erased half.
  for (std::uint32_t i = 0; i < 5000; i += 2) m[i] = i;
  EXPECT_EQ(m.size(), 5000u);
  EXPECT_EQ(m.find(4998)->second, 4998u);
}

TEST(DenseMap, SweepEraseIdiom) {
  DenseMap<int, int> m;
  for (int i = 0; i < 100; ++i) m[i] = i;
  for (auto it = m.begin(); it != m.end();) {
    if (it->second % 3 == 0) {
      it = m.erase(it);  // swap-remove: revisit the same position
    } else {
      ++it;
    }
  }
  EXPECT_EQ(m.size(), 66u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(m.contains(i), i % 3 != 0) << i;
  }
}

TEST(DenseMap, EndpointKeys) {
  DenseMap<Endpoint, int> m;
  const Endpoint a{0x0a000001, 5000};
  const Endpoint b{0x0a000002, 5000};
  m[a] = 1;
  m[b] = 2;
  EXPECT_EQ(m.find(a)->second, 1);
  EXPECT_EQ(m.find(b)->second, 2);
  m.erase(a);
  EXPECT_FALSE(m.contains(a));
  EXPECT_TRUE(m.contains(b));
}

TEST(DenseSet, BasicOps) {
  DenseSet<NodeId> s;
  EXPECT_TRUE(s.insert(NodeId{1}));
  EXPECT_FALSE(s.insert(NodeId{1}));
  EXPECT_TRUE(s.insert(NodeId{2}));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains(NodeId{1}));
  EXPECT_EQ(s.erase(NodeId{1}), 1u);
  EXPECT_FALSE(s.contains(NodeId{1}));
}

}  // namespace
}  // namespace whisper

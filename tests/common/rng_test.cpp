#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace whisper {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = r.next_below(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.next_below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NextRangeInclusive) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = r.next_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BoolProbability) {
  Rng r(13);
  int heads = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (r.next_bool(0.3)) ++heads;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng r(17);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = r.next_gaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng r(19);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += r.next_exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ForkIndependence) {
  Rng parent(23);
  Rng c1 = parent.fork();
  Rng c2 = parent.fork();
  // Child streams differ from each other.
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (c1.next_u64() == c2.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkDeterministic) {
  Rng p1(23), p2(23);
  Rng c1 = p1.fork();
  Rng c2 = p2.fork();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(c1.next_u64(), c2.next_u64());
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng r(31);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  auto orig = v;
  r.shuffle(v);
  EXPECT_NE(v, orig);
}

TEST(Rng, FillBytesDeterministic) {
  Rng a(37), b(37);
  std::uint8_t ba[33], bb[33];
  a.fill_bytes(ba, sizeof(ba));
  b.fill_bytes(bb, sizeof(bb));
  EXPECT_EQ(0, memcmp(ba, bb, sizeof(ba)));
}

TEST(Rng, LognormalPositive) {
  Rng r(41);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(r.next_lognormal(0.0, 1.0), 0.0);
}

}  // namespace
}  // namespace whisper

// Wire-format robustness: every serializable protocol struct must
// round-trip its own encoding and reject (never crash on) random garbage.
#include <gtest/gtest.h>

#include <functional>

#include "chord/tchord.hpp"
#include "common/rng.hpp"
#include "nylon/pss.hpp"
#include "overlay/tman.hpp"
#include "ppss/group.hpp"
#include "ppss/ppss.hpp"
#include "wcl/wcl.hpp"

namespace whisper {
namespace {

const crypto::RsaPublicKey& some_key() {
  static const crypto::RsaPublicKey k = [] {
    crypto::Drbg d(31415);
    return crypto::RsaKeyPair::generate(512, d).pub;
  }();
  return k;
}

pss::ContactCard random_card(Rng& rng) {
  pss::ContactCard c;
  c.id = NodeId{rng.next_u64() | 1};
  c.addr = Endpoint{static_cast<std::uint32_t>(rng.next_u64()),
                    static_cast<std::uint16_t>(rng.next_u64())};
  c.is_public = rng.next_bool(0.5);
  c.relay_id = NodeId{rng.next_u64()};
  return c;
}

wcl::RemotePeer random_peer(Rng& rng, std::size_t helpers) {
  wcl::RemotePeer p;
  p.card = random_card(rng);
  p.key = some_key();
  for (std::size_t i = 0; i < helpers; ++i) {
    wcl::Helper h;
    h.card = random_card(rng);
    h.key = some_key();
    p.helpers.push_back(std::move(h));
  }
  return p;
}

TEST(WireFuzz, ContactCardRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    pss::ContactCard c = random_card(rng);
    Writer w;
    c.serialize(w);
    Reader r(w.data());
    EXPECT_EQ(pss::ContactCard::deserialize(r), c);
    EXPECT_TRUE(r.done());
  }
}

TEST(WireFuzz, PssEntryRoundTrip) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    nylon::PssEntry e;
    e.card = random_card(rng);
    e.age = static_cast<std::uint32_t>(rng.next_u64());
    Writer w;
    e.serialize(w);
    Reader r(w.data());
    nylon::PssEntry back = nylon::PssEntry::deserialize(r);
    EXPECT_EQ(back.card, e.card);
    EXPECT_EQ(back.age, e.age);
    EXPECT_TRUE(r.done());
  }
}

TEST(WireFuzz, PrivateEntryRoundTrip) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    ppss::PrivateEntry e;
    e.peer = random_peer(rng, rng.next_below(4));
    e.age = static_cast<std::uint32_t>(rng.next_u64());
    Writer w;
    e.serialize(w);
    Reader r(w.data());
    auto back = ppss::PrivateEntry::deserialize(r);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->peer.card, e.peer.card);
    EXPECT_EQ(back->peer.helpers.size(), e.peer.helpers.size());
    EXPECT_EQ(back->age, e.age);
    EXPECT_TRUE(r.done());
  }
}

TEST(WireFuzz, ChordDescriptorRoundTrip) {
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    chord::ChordDescriptor d;
    d.key = rng.next_u64();
    d.peer = random_peer(rng, 2);
    Writer w;
    d.serialize(w);
    Reader r(w.data());
    auto back = chord::ChordDescriptor::deserialize(r);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->key, d.key);
    EXPECT_EQ(back->peer.card, d.peer.card);
  }
}

TEST(WireFuzz, OverlayDescriptorRoundTrip) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    overlay::OverlayDescriptor d;
    d.key = rng.next_u64();
    d.peer = random_peer(rng, 1);
    Writer w;
    d.serialize(w);
    Reader r(w.data());
    auto back = overlay::OverlayDescriptor::deserialize(r);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->key, d.key);
    EXPECT_EQ(back->peer.card, d.peer.card);
  }
}

TEST(WireFuzz, PassportAndAccreditationRoundTrip) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    ppss::Passport p;
    p.node = NodeId{rng.next_u64()};
    p.epoch = rng.next_u64();
    p.signature = Bytes(rng.next_below(100));
    rng.fill_bytes(p.signature.data(), p.signature.size());
    Writer w;
    p.serialize(w);
    Reader r(w.data());
    auto back = ppss::Passport::deserialize(r);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->node, p.node);
    EXPECT_EQ(back->epoch, p.epoch);
    EXPECT_EQ(back->signature, p.signature);
  }
}

// Garbage in, nullopt (or garbage values) out — never a crash or a read
// past the buffer.
TEST(WireFuzz, GarbageNeverCrashesDeserializers) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    Bytes garbage(rng.next_below(300));
    rng.fill_bytes(garbage.data(), garbage.size());
    {
      Reader r(garbage);
      (void)pss::ContactCard::deserialize(r);
    }
    {
      Reader r(garbage);
      (void)nylon::PssEntry::deserialize(r);
    }
    {
      Reader r(garbage);
      (void)ppss::PrivateEntry::deserialize(r);
    }
    {
      Reader r(garbage);
      (void)wcl::RemotePeer::deserialize(r);
    }
    {
      Reader r(garbage);
      (void)chord::ChordDescriptor::deserialize(r);
    }
    {
      Reader r(garbage);
      (void)overlay::OverlayDescriptor::deserialize(r);
    }
    {
      Reader r(garbage);
      (void)ppss::Passport::deserialize(r);
    }
    {
      Reader r(garbage);
      (void)ppss::Accreditation::deserialize(r);
    }
    (void)crypto::RsaPublicKey::deserialize(garbage);
    (void)crypto::OnionPacket::deserialize(garbage);
  }
}

// --- Table-driven hostile-input coverage: every codec, every prefix. ---
//
// Each entry pairs a valid encoding with an `accepts` predicate that runs
// the real deserializer and applies the same acceptance rule the protocol
// handlers use: parse OK *and* input fully consumed.

struct CodecCase {
  const char* name;
  Bytes valid;
  std::function<bool(BytesView)> accepts;
};

std::vector<CodecCase> codec_table() {
  Rng rng(99);
  std::vector<CodecCase> table;

  auto framed = [](auto decode) {
    return [decode](BytesView b) {
      Reader r(b);
      decode(r);
      return r.expect_done();
    };
  };

  {
    Writer w;
    random_card(rng).serialize(w);
    table.push_back({"ContactCard", w.data(),
                     framed([](Reader& r) { (void)pss::ContactCard::deserialize(r); })});
  }
  {
    nylon::PssEntry e;
    e.card = random_card(rng);
    e.age = 17;
    Writer w;
    e.serialize(w);
    table.push_back({"PssEntry", w.data(),
                     framed([](Reader& r) { (void)nylon::PssEntry::deserialize(r); })});
  }
  {
    ppss::PrivateEntry e;
    e.peer = random_peer(rng, 3);
    e.age = 4;
    Writer w;
    e.serialize(w);
    table.push_back({"PrivateEntry", w.data(), framed([](Reader& r) {
                       if (!ppss::PrivateEntry::deserialize(r)) r.fail(DecodeError::kBadValue);
                     })});
  }
  {
    Writer w;
    random_peer(rng, 2).serialize(w);
    table.push_back({"RemotePeer", w.data(), framed([](Reader& r) {
                       if (!wcl::RemotePeer::deserialize(r)) r.fail(DecodeError::kBadValue);
                     })});
  }
  {
    chord::ChordDescriptor d;
    d.key = rng.next_u64();
    d.peer = random_peer(rng, 2);
    Writer w;
    d.serialize(w);
    table.push_back({"ChordDescriptor", w.data(), framed([](Reader& r) {
                       if (!chord::ChordDescriptor::deserialize(r)) {
                         r.fail(DecodeError::kBadValue);
                       }
                     })});
  }
  {
    overlay::OverlayDescriptor d;
    d.key = rng.next_u64();
    d.peer = random_peer(rng, 1);
    Writer w;
    d.serialize(w);
    table.push_back({"OverlayDescriptor", w.data(), framed([](Reader& r) {
                       if (!overlay::OverlayDescriptor::deserialize(r)) {
                         r.fail(DecodeError::kBadValue);
                       }
                     })});
  }
  {
    ppss::Passport p;
    p.node = NodeId{7};
    p.epoch = 3;
    p.signature = Bytes(48, 0x5a);
    Writer w;
    p.serialize(w);
    table.push_back({"Passport", w.data(), framed([](Reader& r) {
                       if (!ppss::Passport::deserialize(r)) r.fail(DecodeError::kBadValue);
                     })});
  }
  {
    ppss::Accreditation a;
    a.group = GroupId{9};
    a.node = NodeId{11};
    a.epoch = 2;
    a.signature = Bytes(48, 0xa5);
    Writer w;
    a.serialize(w);
    table.push_back({"Accreditation", w.data(), framed([](Reader& r) {
                       if (!ppss::Accreditation::deserialize(r)) {
                         r.fail(DecodeError::kBadValue);
                       }
                     })});
  }
  table.push_back({"RsaPublicKey", some_key().serialize(), [](BytesView b) {
                     return crypto::RsaPublicKey::deserialize(b).has_value();
                   }});
  {
    crypto::OnionPacket pkt;
    pkt.header = Bytes(40, 0x11);
    pkt.body = Bytes(60, 0x22);
    table.push_back({"OnionPacket", pkt.serialize(), [](BytesView b) {
                       return crypto::OnionPacket::deserialize(b).has_value();
                     }});
  }
  return table;
}

TEST(WireFuzz, EveryCodecAcceptsItsOwnEncoding) {
  for (const CodecCase& c : codec_table()) {
    EXPECT_TRUE(c.accepts(c.valid)) << c.name;
  }
}

// Satellite: every strict prefix of a valid encoding (0..len-1 bytes) must
// be rejected cleanly — every field is fixed-width or length-prefixed, so a
// cut frame can never parse to completion.
TEST(WireFuzz, EveryCodecRejectsEveryTruncation) {
  for (const CodecCase& c : codec_table()) {
    for (std::size_t cut = 0; cut < c.valid.size(); ++cut) {
      EXPECT_FALSE(c.accepts(BytesView(c.valid.data(), cut)))
          << c.name << " accepted a " << cut << "-byte prefix of "
          << c.valid.size() << " bytes";
    }
  }
}

// Satellite: a valid frame followed by trailing garbage must be rejected at
// every deserialize call site (kTrailingBytes), not silently accepted.
TEST(WireFuzz, EveryCodecRejectsTrailingGarbage) {
  for (const CodecCase& c : codec_table()) {
    for (std::size_t extra = 1; extra <= 8; ++extra) {
      Bytes padded = c.valid;
      padded.insert(padded.end(), extra, 0xa5);
      EXPECT_FALSE(c.accepts(padded)) << c.name << " accepted " << extra
                                      << " trailing bytes";
    }
  }
}

// Truncation fuzz: valid encodings cut at every byte boundary must fail
// gracefully (nullopt), never crash.
TEST(WireFuzz, TruncatedEncodingsFailGracefully) {
  Rng rng(8);
  wcl::RemotePeer peer = random_peer(rng, 3);
  Writer w;
  peer.serialize(w);
  const Bytes full = w.data();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    Reader r(BytesView(full.data(), cut));
    auto back = wcl::RemotePeer::deserialize(r);
    // Any successful parse from a truncation must have consumed valid data
    // only; most cuts must fail.
    if (back.has_value()) {
      EXPECT_TRUE(r.ok());
    }
  }
}

}  // namespace
}  // namespace whisper

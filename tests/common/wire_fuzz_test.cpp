// Wire-format robustness: every serializable protocol struct must
// round-trip its own encoding and reject (never crash on) random garbage.
#include <gtest/gtest.h>

#include "chord/tchord.hpp"
#include "common/rng.hpp"
#include "nylon/pss.hpp"
#include "overlay/tman.hpp"
#include "ppss/group.hpp"
#include "ppss/ppss.hpp"
#include "wcl/wcl.hpp"

namespace whisper {
namespace {

const crypto::RsaPublicKey& some_key() {
  static const crypto::RsaPublicKey k = [] {
    crypto::Drbg d(31415);
    return crypto::RsaKeyPair::generate(512, d).pub;
  }();
  return k;
}

pss::ContactCard random_card(Rng& rng) {
  pss::ContactCard c;
  c.id = NodeId{rng.next_u64() | 1};
  c.addr = Endpoint{static_cast<std::uint32_t>(rng.next_u64()),
                    static_cast<std::uint16_t>(rng.next_u64())};
  c.is_public = rng.next_bool(0.5);
  c.relay_id = NodeId{rng.next_u64()};
  return c;
}

wcl::RemotePeer random_peer(Rng& rng, std::size_t helpers) {
  wcl::RemotePeer p;
  p.card = random_card(rng);
  p.key = some_key();
  for (std::size_t i = 0; i < helpers; ++i) {
    wcl::Helper h;
    h.card = random_card(rng);
    h.key = some_key();
    p.helpers.push_back(std::move(h));
  }
  return p;
}

TEST(WireFuzz, ContactCardRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    pss::ContactCard c = random_card(rng);
    Writer w;
    c.serialize(w);
    Reader r(w.data());
    EXPECT_EQ(pss::ContactCard::deserialize(r), c);
    EXPECT_TRUE(r.done());
  }
}

TEST(WireFuzz, PssEntryRoundTrip) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    nylon::PssEntry e;
    e.card = random_card(rng);
    e.age = static_cast<std::uint32_t>(rng.next_u64());
    Writer w;
    e.serialize(w);
    Reader r(w.data());
    nylon::PssEntry back = nylon::PssEntry::deserialize(r);
    EXPECT_EQ(back.card, e.card);
    EXPECT_EQ(back.age, e.age);
    EXPECT_TRUE(r.done());
  }
}

TEST(WireFuzz, PrivateEntryRoundTrip) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    ppss::PrivateEntry e;
    e.peer = random_peer(rng, rng.next_below(4));
    e.age = static_cast<std::uint32_t>(rng.next_u64());
    Writer w;
    e.serialize(w);
    Reader r(w.data());
    auto back = ppss::PrivateEntry::deserialize(r);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->peer.card, e.peer.card);
    EXPECT_EQ(back->peer.helpers.size(), e.peer.helpers.size());
    EXPECT_EQ(back->age, e.age);
    EXPECT_TRUE(r.done());
  }
}

TEST(WireFuzz, ChordDescriptorRoundTrip) {
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    chord::ChordDescriptor d;
    d.key = rng.next_u64();
    d.peer = random_peer(rng, 2);
    Writer w;
    d.serialize(w);
    Reader r(w.data());
    auto back = chord::ChordDescriptor::deserialize(r);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->key, d.key);
    EXPECT_EQ(back->peer.card, d.peer.card);
  }
}

TEST(WireFuzz, OverlayDescriptorRoundTrip) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    overlay::OverlayDescriptor d;
    d.key = rng.next_u64();
    d.peer = random_peer(rng, 1);
    Writer w;
    d.serialize(w);
    Reader r(w.data());
    auto back = overlay::OverlayDescriptor::deserialize(r);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->key, d.key);
    EXPECT_EQ(back->peer.card, d.peer.card);
  }
}

TEST(WireFuzz, PassportAndAccreditationRoundTrip) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    ppss::Passport p;
    p.node = NodeId{rng.next_u64()};
    p.epoch = rng.next_u64();
    p.signature = Bytes(rng.next_below(100));
    rng.fill_bytes(p.signature.data(), p.signature.size());
    Writer w;
    p.serialize(w);
    Reader r(w.data());
    auto back = ppss::Passport::deserialize(r);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->node, p.node);
    EXPECT_EQ(back->epoch, p.epoch);
    EXPECT_EQ(back->signature, p.signature);
  }
}

// Garbage in, nullopt (or garbage values) out — never a crash or a read
// past the buffer.
TEST(WireFuzz, GarbageNeverCrashesDeserializers) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    Bytes garbage(rng.next_below(300));
    rng.fill_bytes(garbage.data(), garbage.size());
    {
      Reader r(garbage);
      (void)pss::ContactCard::deserialize(r);
    }
    {
      Reader r(garbage);
      (void)nylon::PssEntry::deserialize(r);
    }
    {
      Reader r(garbage);
      (void)ppss::PrivateEntry::deserialize(r);
    }
    {
      Reader r(garbage);
      (void)wcl::RemotePeer::deserialize(r);
    }
    {
      Reader r(garbage);
      (void)chord::ChordDescriptor::deserialize(r);
    }
    {
      Reader r(garbage);
      (void)overlay::OverlayDescriptor::deserialize(r);
    }
    {
      Reader r(garbage);
      (void)ppss::Passport::deserialize(r);
    }
    {
      Reader r(garbage);
      (void)ppss::Accreditation::deserialize(r);
    }
    (void)crypto::RsaPublicKey::deserialize(garbage);
    (void)crypto::OnionPacket::deserialize(garbage);
  }
}

// Truncation fuzz: valid encodings cut at every byte boundary must fail
// gracefully (nullopt), never crash.
TEST(WireFuzz, TruncatedEncodingsFailGracefully) {
  Rng rng(8);
  wcl::RemotePeer peer = random_peer(rng, 3);
  Writer w;
  peer.serialize(w);
  const Bytes full = w.data();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    Reader r(BytesView(full.data(), cut));
    auto back = wcl::RemotePeer::deserialize(r);
    // Any successful parse from a truncation must have consumed valid data
    // only; most cuts must fail.
    if (back.has_value()) {
      EXPECT_TRUE(r.ok());
    }
  }
}

}  // namespace
}  // namespace whisper

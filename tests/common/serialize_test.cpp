#include "common/serialize.hpp"

#include <gtest/gtest.h>

namespace whisper {
namespace {

TEST(Serialize, RoundTripScalars) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.f64(3.25);
  w.boolean(true);
  w.boolean(false);

  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(r.f64(), 3.25);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.done());
}

TEST(Serialize, RoundTripIds) {
  Writer w;
  w.node_id(NodeId{99});
  w.group_id(GroupId{7});
  w.endpoint(Endpoint{0x0a000001, 4242});

  Reader r(w.data());
  EXPECT_EQ(r.node_id(), NodeId{99});
  EXPECT_EQ(r.group_id(), GroupId{7});
  Endpoint ep = r.endpoint();
  EXPECT_EQ(ep.ip, 0x0a000001u);
  EXPECT_EQ(ep.port, 4242);
  EXPECT_TRUE(r.done());
}

TEST(Serialize, RoundTripBytesAndStrings) {
  Writer w;
  w.bytes(Bytes{1, 2, 3});
  w.str("hello");
  w.bytes(Bytes{});

  Reader r(w.data());
  EXPECT_EQ(r.bytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.bytes(), Bytes{});
  EXPECT_TRUE(r.done());
}

TEST(Serialize, TruncatedReadSetsError) {
  Writer w;
  w.u32(5);
  Reader r(w.data());
  r.u64();  // reads past the end
  EXPECT_FALSE(r.ok());
}

TEST(Serialize, OversizedLengthPrefixSetsError) {
  Writer w;
  w.u32(1000);  // claims 1000 bytes follow, but none do
  Reader r(w.data());
  EXPECT_EQ(r.bytes(), Bytes{});
  EXPECT_FALSE(r.ok());
}

TEST(Serialize, RestConsumesRemaining) {
  Writer w;
  w.u8(1);
  w.raw(Bytes{9, 9, 9});
  Reader r(w.data());
  EXPECT_EQ(r.u8(), 1);
  EXPECT_EQ(r.rest(), (Bytes{9, 9, 9}));
  EXPECT_TRUE(r.done());
}

TEST(Serialize, DoneFalseWhenBytesRemain) {
  Writer w;
  w.u16(1);
  w.u16(2);
  Reader r(w.data());
  r.u16();
  EXPECT_FALSE(r.done());
}

TEST(Serialize, FailedReadReturnsZero) {
  Reader r(Bytes{});
  EXPECT_EQ(r.u32(), 0u);
  EXPECT_EQ(r.node_id(), kNilNode);
  EXPECT_FALSE(r.ok());
}

TEST(Serialize, EndpointStrFormatting) {
  Endpoint ep{(192u << 24) | (168u << 16) | (1u << 8) | 5u, 8080};
  EXPECT_EQ(ep.str(), "192.168.1.5:8080");
}

TEST(Serialize, HexRoundTrip) {
  Bytes b{0x00, 0xff, 0x12, 0xab};
  EXPECT_EQ(to_hex(b), "00ff12ab");
  EXPECT_EQ(from_hex("00ff12ab"), b);
}

// --- DecodeError taxonomy. ---

TEST(DecodeErrors, TruncatedFixedWidthRead) {
  Bytes b{0x01, 0x02};
  Reader r(b);
  EXPECT_EQ(r.u32(), 0u);  // zero-filled
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error(), DecodeError::kTruncated);
}

TEST(DecodeErrors, LengthPrefixBeyondInputIsBadLength) {
  Writer w;
  w.u32(100);  // claims 100 bytes; none follow
  Reader r(w.data());
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_EQ(r.error(), DecodeError::kBadLength);
}

TEST(DecodeErrors, LengthPrefixOverProtocolBoundIsOversized) {
  Writer w;
  w.u32(1 << 20);
  w.raw(Bytes(8, 0xaa));
  Reader r(w.data());
  // The bound is checked before the remaining-input check and before any
  // allocation: a forged prefix cannot drive memory growth.
  EXPECT_TRUE(r.bytes(/*max_len=*/256).empty());
  EXPECT_EQ(r.error(), DecodeError::kOversized);
}

TEST(DecodeErrors, Count16OverBoundIsOversizedAndReturnsZero) {
  Writer w;
  w.u16(5000);
  Reader r(w.data());
  EXPECT_EQ(r.count16(/*max_count=*/32), 0u);
  EXPECT_EQ(r.error(), DecodeError::kOversized);
}

TEST(DecodeErrors, ExpectDoneStampsTrailingBytes) {
  Writer w;
  w.u16(7);
  w.u8(0xcc);  // trailing garbage after a complete frame
  Reader r(w.data());
  EXPECT_EQ(r.u16(), 7u);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.reject_reason(), DecodeError::kTrailingBytes);  // pre-stamp view
  EXPECT_FALSE(r.expect_done());
  EXPECT_EQ(r.error(), DecodeError::kTrailingBytes);
}

TEST(DecodeErrors, FirstErrorWins) {
  Bytes b{0x01};
  Reader r(b);
  (void)r.u32();                   // kTruncated
  r.fail(DecodeError::kBadValue);  // later failure must not overwrite it
  EXPECT_EQ(r.error(), DecodeError::kTruncated);
}

TEST(DecodeErrors, CallerFlaggedBadValue) {
  Writer w;
  w.u8(99);
  Reader r(w.data());
  (void)r.u8();
  r.fail(DecodeError::kBadValue);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error(), DecodeError::kBadValue);
}

TEST(DecodeErrors, NamesAreStableTelemetryKeys) {
  // drop_frame() reasons embed these names; renaming breaks dashboards.
  EXPECT_STREQ(decode_error_name(DecodeError::kNone), "none");
  EXPECT_STREQ(decode_error_name(DecodeError::kTruncated), "truncated");
  EXPECT_STREQ(decode_error_name(DecodeError::kBadLength), "badlength");
  EXPECT_STREQ(decode_error_name(DecodeError::kOversized), "oversized");
  EXPECT_STREQ(decode_error_name(DecodeError::kTrailingBytes), "trailing");
  EXPECT_STREQ(decode_error_name(DecodeError::kBadValue), "badvalue");
}

}  // namespace
}  // namespace whisper

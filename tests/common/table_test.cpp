#include "common/table.hpp"

#include <gtest/gtest.h>

namespace whisper {
namespace {

TEST(Table, RendersHeadersAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"only-one"});
  EXPECT_NO_THROW(t.render());
}

TEST(Table, ColumnsAligned) {
  Table t({"x", "y"});
  t.add_row({"longvalue", "1"});
  const std::string out = t.render();
  // All lines (header, separator, data) have equal width: columns line up.
  std::vector<std::size_t> line_lengths;
  std::size_t start = 0;
  for (std::size_t nl = out.find('\n'); nl != std::string::npos; nl = out.find('\n', start)) {
    line_lengths.push_back(nl - start);
    start = nl + 1;
  }
  ASSERT_EQ(line_lengths.size(), 3u);
  EXPECT_EQ(line_lengths[0], line_lengths[1]);
  EXPECT_EQ(line_lengths[1], line_lengths[2]);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, PctFormatsFraction) {
  EXPECT_EQ(Table::pct(0.983, 2), "98.30%");
  EXPECT_EQ(Table::pct(1.0, 1), "100.0%");
}

}  // namespace
}  // namespace whisper

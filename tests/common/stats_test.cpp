#include "common/stats.hpp"

#include <gtest/gtest.h>

namespace whisper {
namespace {

TEST(Samples, BasicSummary) {
  Samples s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_NEAR(s.stddev(), 1.5811, 1e-3);
}

TEST(Samples, PercentileEndpoints) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
}

TEST(Samples, PercentileInterpolates) {
  Samples s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 2.5);
}

TEST(Samples, EmptySafe) {
  Samples s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
  EXPECT_TRUE(s.cdf_series(10).empty());
}

TEST(Samples, CdfAt) {
  Samples s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  auto cdf = s.cdf_at({0.5, 2.0, 10.0});
  EXPECT_DOUBLE_EQ(cdf[0], 0.0);
  EXPECT_DOUBLE_EQ(cdf[1], 0.5);
  EXPECT_DOUBLE_EQ(cdf[2], 1.0);
}

TEST(Samples, CdfSeriesMonotone) {
  Samples s;
  for (int i = 0; i < 100; ++i) s.add(i * i % 37);
  auto series = s.cdf_series(20);
  ASSERT_EQ(series.size(), 20u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].second, series[i - 1].second);
    EXPECT_GE(series[i].first, series[i - 1].first);
  }
  EXPECT_DOUBLE_EQ(series.back().second, 1.0);
}

TEST(Samples, AddNWeights) {
  Samples s;
  s.add_n(5.0, 10);
  EXPECT_EQ(s.count(), 10u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
}

TEST(Samples, InterleavedAddAndQuery) {
  Samples s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  s.add(7.0);  // must re-sort lazily
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
}

TEST(IntDistribution, CdfCountsCorrectly) {
  IntDistribution d;
  for (std::int64_t v : {1, 1, 2, 5}) d.add(v);
  auto cdf = d.cdf(0, 5);
  ASSERT_EQ(cdf.size(), 6u);
  EXPECT_DOUBLE_EQ(cdf[0].second, 0.0);   // <= 0
  EXPECT_DOUBLE_EQ(cdf[1].second, 0.5);   // <= 1
  EXPECT_DOUBLE_EQ(cdf[2].second, 0.75);  // <= 2
  EXPECT_DOUBLE_EQ(cdf[5].second, 1.0);   // <= 5
}

TEST(IntDistribution, MeanAndMax) {
  IntDistribution d;
  for (std::int64_t v : {2, 4, 6}) d.add(v);
  EXPECT_DOUBLE_EQ(d.mean(), 4.0);
  EXPECT_EQ(d.max(), 6);
}

TEST(FormatHelpers, StackedPercentilesContainsAll) {
  Samples s;
  for (int i = 0; i < 100; ++i) s.add(i);
  const std::string out = format_stacked_percentiles(s);
  EXPECT_NE(out.find("p5="), std::string::npos);
  EXPECT_NE(out.find("p90="), std::string::npos);
}

TEST(FormatHelpers, FormatCdfHasHeaderAndRows) {
  Samples s;
  for (int i = 0; i < 10; ++i) s.add(i);
  const std::string out = format_cdf(s, 5, "delay");
  EXPECT_NE(out.find("delay"), std::string::npos);
  EXPECT_NE(out.find("100.00%"), std::string::npos);
}

}  // namespace
}  // namespace whisper

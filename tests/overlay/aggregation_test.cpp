#include "overlay/aggregation.hpp"

#include <gtest/gtest.h>

#include "whisper/testbed.hpp"

namespace whisper::overlay {
namespace {

constexpr GroupId kGroup{80808};

TestbedConfig config(std::uint64_t seed) {
  TestbedConfig cfg;
  cfg.initial_nodes = 30;
  cfg.node.pss.pi_min_public = 3;
  cfg.node.wcl.pi = 3;
  cfg.node.ppss.cycle = 30 * net::kSecond;
  cfg.seed = seed;
  return cfg;
}

struct AggHarness {
  WhisperTestbed tb;
  std::vector<WhisperNode*> members;

  AggHarness(std::size_t n_members, std::uint64_t seed) : tb(config(seed)) {
    tb.run_for(6 * net::kMinute);
    auto nodes = tb.alive_nodes();
    crypto::Drbg d(seed);
    auto& fg = nodes[0]->create_group(kGroup, crypto::RsaKeyPair::generate(512, d));
    members.push_back(nodes[0]);
    for (std::size_t i = 1; i < n_members; ++i) {
      nodes[i]->join_group(kGroup, *fg.invite(nodes[i]->id()), fg.self_descriptor());
      members.push_back(nodes[i]);
      tb.run_for(5 * net::kSecond);
    }
    tb.run_for(5 * net::kMinute);
  }
};

TEST(Aggregation, AverageConverges) {
  AggHarness h(10, 4001);
  AggregationConfig ac;
  ac.cycle = 20 * net::kSecond;
  std::vector<std::unique_ptr<Aggregation>> aggs;
  double truth = 0;
  for (std::size_t i = 0; i < h.members.size(); ++i) {
    const double v = static_cast<double>(i * 10);  // 0, 10, ..., 90
    truth += v;
    aggs.push_back(std::make_unique<Aggregation>(h.tb.clock(),
                                                 *h.members[i]->group(kGroup), v, ac,
                                                 h.tb.rng().fork()));
    aggs.back()->start();
  }
  truth /= static_cast<double>(h.members.size());
  h.tb.run_for(10 * net::kMinute);

  // Every estimate close to the global mean (45).
  for (auto& a : aggs) {
    EXPECT_NEAR(a->estimate(), truth, truth * 0.25) << "an estimate did not converge";
  }
  // The spread collapsed dramatically from the initial [0, 90].
  double mn = 1e18, mx = -1e18;
  for (auto& a : aggs) {
    mn = std::min(mn, a->estimate());
    mx = std::max(mx, a->estimate());
  }
  EXPECT_LT(mx - mn, 25.0);
}

TEST(Aggregation, MaxPropagates) {
  AggHarness h(8, 4002);
  AggregationConfig ac;
  ac.kind = AggregateKind::kMax;
  ac.cycle = 20 * net::kSecond;
  std::vector<std::unique_ptr<Aggregation>> aggs;
  for (std::size_t i = 0; i < h.members.size(); ++i) {
    aggs.push_back(std::make_unique<Aggregation>(h.tb.clock(),
                                                 *h.members[i]->group(kGroup),
                                                 static_cast<double>(i), ac,
                                                 h.tb.rng().fork()));
    aggs.back()->start();
  }
  h.tb.run_for(8 * net::kMinute);
  // Everyone learns the maximum (7) — this is exactly the leader-election
  // primitive of §IV-A.
  for (auto& a : aggs) EXPECT_DOUBLE_EQ(a->estimate(), 7.0);
}

TEST(Aggregation, MinPropagates) {
  AggHarness h(6, 4003);
  AggregationConfig ac;
  ac.kind = AggregateKind::kMin;
  ac.cycle = 20 * net::kSecond;
  std::vector<std::unique_ptr<Aggregation>> aggs;
  for (std::size_t i = 0; i < h.members.size(); ++i) {
    aggs.push_back(std::make_unique<Aggregation>(h.tb.clock(),
                                                 *h.members[i]->group(kGroup),
                                                 static_cast<double>(100 + i), ac,
                                                 h.tb.rng().fork()));
    aggs.back()->start();
  }
  h.tb.run_for(8 * net::kMinute);
  for (auto& a : aggs) EXPECT_DOUBLE_EQ(a->estimate(), 100.0);
}

TEST(Aggregation, SizeEstimation) {
  AggHarness h(12, 4004);
  AggregationConfig ac;
  ac.cycle = 20 * net::kSecond;
  std::vector<std::unique_ptr<Aggregation>> aggs;
  for (std::size_t i = 0; i < h.members.size(); ++i) {
    // The leader seeds 1, everyone else 0: the average converges to 1/n.
    aggs.push_back(std::make_unique<Aggregation>(h.tb.clock(),
                                                 *h.members[i]->group(kGroup),
                                                 i == 0 ? 1.0 : 0.0, ac,
                                                 h.tb.rng().fork()));
    aggs.back()->start();
  }
  h.tb.run_for(12 * net::kMinute);
  // Estimates imply the true group size within a reasonable factor.
  for (auto& a : aggs) {
    EXPECT_GT(a->implied_size(), 6.0);
    EXPECT_LT(a->implied_size(), 24.0);
  }
}

TEST(Aggregation, ExchangesHappen) {
  AggHarness h(5, 4005);
  AggregationConfig ac;
  ac.cycle = 20 * net::kSecond;
  std::vector<std::unique_ptr<Aggregation>> aggs;
  for (WhisperNode* m : h.members) {
    aggs.push_back(std::make_unique<Aggregation>(h.tb.clock(), *m->group(kGroup), 1.0, ac,
                                                 h.tb.rng().fork()));
    aggs.back()->start();
  }
  h.tb.run_for(5 * net::kMinute);
  std::uint64_t total = 0;
  for (auto& a : aggs) total += a->exchanges();
  EXPECT_GT(total, 10u);
}

}  // namespace
}  // namespace whisper::overlay

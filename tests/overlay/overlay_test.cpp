// T-Man / GosSkip / Broadcast over a private group.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "chord/tchord.hpp"
#include "overlay/broadcast.hpp"
#include "overlay/gosskip.hpp"
#include "overlay/tman.hpp"
#include "whisper/testbed.hpp"

namespace whisper::overlay {
namespace {

constexpr GroupId kGroup{90909};

TestbedConfig config(std::uint64_t seed) {
  TestbedConfig cfg;
  cfg.initial_nodes = 35;
  cfg.node.pss.pi_min_public = 3;
  cfg.node.wcl.pi = 3;
  cfg.node.ppss.cycle = 30 * net::kSecond;
  cfg.seed = seed;
  return cfg;
}

struct GroupHarness {
  WhisperTestbed tb;
  std::vector<WhisperNode*> members;

  GroupHarness(std::size_t n_members, std::uint64_t seed) : tb(config(seed)) {
    tb.run_for(6 * net::kMinute);
    auto nodes = tb.alive_nodes();
    crypto::Drbg d(seed);
    auto& fg = nodes[0]->create_group(kGroup, crypto::RsaKeyPair::generate(512, d));
    members.push_back(nodes[0]);
    for (std::size_t i = 1; i < n_members; ++i) {
      nodes[i]->join_group(kGroup, *fg.invite(nodes[i]->id()), fg.self_descriptor());
      members.push_back(nodes[i]);
      tb.run_for(5 * net::kSecond);
    }
    tb.run_for(5 * net::kMinute);
  }
};

TEST(RankFunctions, RingAndLine) {
  EXPECT_EQ(rank::ring(10, 20), 10u);
  EXPECT_EQ(rank::ring(20, 10), 10u);
  EXPECT_EQ(rank::ring(0, ~0ull), 1u);  // wraps
  EXPECT_EQ(rank::line(10, 20), 10u);
  EXPECT_EQ(rank::line(20, 10), 10u);
  EXPECT_EQ(rank::line(0, ~0ull), ~0ull);  // no wrap on the line
}

TEST(OverlayKeys, DeterministicAndDistinctFromChord) {
  EXPECT_EQ(overlay_key_of(NodeId{7}), overlay_key_of(NodeId{7}));
  EXPECT_NE(overlay_key_of(NodeId{7}), overlay_key_of(NodeId{8}));
}

TEST(TManGeneric, ConvergesToClosestNeighbours) {
  GroupHarness h(10, 3001);
  TManConfig tc;
  tc.cycle = 20 * net::kSecond;
  std::vector<std::unique_ptr<TMan>> instances;
  for (WhisperNode* m : h.members) {
    instances.push_back(std::make_unique<TMan>(
        h.tb.clock(), *m->group(kGroup), overlay_key_of(m->id()), rank::line, tc,
        h.tb.rng().fork()));
    instances.back()->start();
  }
  h.tb.run_for(8 * net::kMinute);

  // Global truth: sorted keys.
  std::vector<OverlayKey> keys;
  for (WhisperNode* m : h.members) keys.push_back(overlay_key_of(m->id()));
  std::sort(keys.begin(), keys.end());

  std::size_t correct = 0;
  for (auto& inst : instances) {
    auto close = inst->closest(2);
    if (close.empty()) continue;
    // The closest candidate must be the true nearest key on the line.
    OverlayKey best_true = 0;
    std::uint64_t best_dist = ~0ull;
    for (OverlayKey k : keys) {
      if (k == inst->self_key()) continue;
      if (rank::line(inst->self_key(), k) < best_dist) {
        best_dist = rank::line(inst->self_key(), k);
        best_true = k;
      }
    }
    if (close.front().key == best_true) ++correct;
  }
  EXPECT_GE(correct, instances.size() - 1);
}

TEST(GosSkipOverlay, LeftRightNeighboursCorrect) {
  GroupHarness h(10, 3002);
  GosSkipConfig gc;
  gc.tman.cycle = 20 * net::kSecond;
  std::vector<std::unique_ptr<GosSkip>> instances;
  for (WhisperNode* m : h.members) {
    instances.push_back(
        std::make_unique<GosSkip>(h.tb.clock(), *m->group(kGroup), gc, h.tb.rng().fork()));
    instances.back()->start();
  }
  h.tb.run_for(8 * net::kMinute);

  std::vector<OverlayKey> keys;
  for (WhisperNode* m : h.members) keys.push_back(overlay_key_of(m->id()));
  std::sort(keys.begin(), keys.end());

  std::size_t correct = 0;
  for (auto& inst : instances) {
    auto it = std::find(keys.begin(), keys.end(), inst->self_key());
    ASSERT_NE(it, keys.end());
    const bool has_left = it != keys.begin();
    const bool has_right = std::next(it) != keys.end();
    bool ok = true;
    if (has_left) {
      auto l = inst->left();
      ok &= l.has_value() && l->key == *std::prev(it);
    }
    if (has_right) {
      auto r = inst->right();
      ok &= r.has_value() && r->key == *std::next(it);
    }
    if (ok) ++correct;
  }
  EXPECT_GE(correct, instances.size() - 1);
}

TEST(GosSkipOverlay, SearchFindsOwner) {
  GroupHarness h(10, 3003);
  GosSkipConfig gc;
  gc.tman.cycle = 20 * net::kSecond;
  std::vector<std::unique_ptr<GosSkip>> instances;
  for (WhisperNode* m : h.members) {
    instances.push_back(
        std::make_unique<GosSkip>(h.tb.clock(), *m->group(kGroup), gc, h.tb.rng().fork()));
    instances.back()->start();
  }
  h.tb.run_for(8 * net::kMinute);

  std::vector<OverlayKey> keys;
  for (WhisperNode* m : h.members) keys.push_back(overlay_key_of(m->id()));
  std::sort(keys.begin(), keys.end());

  Rng rng(42);
  int answered = 0, correct = 0;
  for (int q = 0; q < 12; ++q) {
    auto& querier = instances[rng.pick_index(instances)];
    const OverlayKey target = rng.next_u64();
    // True owner: smallest key >= target, wrapping to the smallest overall.
    auto it = std::lower_bound(keys.begin(), keys.end(), target);
    const OverlayKey expected = it == keys.end() ? keys.front() : *it;
    querier->search(target, [&, expected](std::optional<GosSkip::SearchResult> res) {
      if (!res) return;
      ++answered;
      if (res->owner.key == expected) ++correct;
    });
    h.tb.run_for(30 * net::kSecond);
  }
  EXPECT_GE(answered, 9);
  EXPECT_GE(correct, answered * 7 / 10);
}

TEST(BroadcastDissemination, ReachesEveryMember) {
  GroupHarness h(12, 3004);
  BroadcastConfig bc;
  std::vector<std::unique_ptr<Broadcast>> casts;
  std::vector<int> received(h.members.size(), 0);
  for (std::size_t i = 0; i < h.members.size(); ++i) {
    casts.push_back(std::make_unique<Broadcast>(*h.members[i]->group(kGroup), bc,
                                                h.tb.rng().fork()));
    casts[i]->on_deliver = [&received, i](NodeId, BytesView) { ++received[i]; };
  }
  casts[0]->publish(to_bytes("hello everyone"));
  h.tb.run_for(2 * net::kMinute);

  std::size_t reached = 0;
  for (int r : received) reached += r > 0 ? 1 : 0;
  EXPECT_GE(reached, h.members.size() - 1);  // near-full coverage
  // Exactly-once delivery everywhere.
  for (int r : received) EXPECT_LE(r, 1);
}

TEST(BroadcastDissemination, DuplicatesSuppressed) {
  GroupHarness h(8, 3005);
  BroadcastConfig bc;
  bc.fanout = 4;
  std::vector<std::unique_ptr<Broadcast>> casts;
  for (WhisperNode* m : h.members) {
    casts.push_back(std::make_unique<Broadcast>(*m->group(kGroup), bc, h.tb.rng().fork()));
  }
  casts[0]->publish(to_bytes("dup test"));
  casts[0]->publish(to_bytes("dup test 2"));
  h.tb.run_for(2 * net::kMinute);
  std::uint64_t duplicates = 0, delivered = 0;
  for (auto& c : casts) {
    duplicates += c->stats().duplicates;
    delivered += c->stats().delivered;
  }
  // With fanout 4 in an 8-member group, duplicates must occur and be eaten.
  EXPECT_GT(duplicates, 0u);
  EXPECT_LE(delivered, 2u * casts.size());
}

TEST(BroadcastDissemination, OriginAttributedCorrectly) {
  GroupHarness h(6, 3006);
  BroadcastConfig bc;
  std::vector<std::unique_ptr<Broadcast>> casts;
  NodeId seen_origin;
  for (WhisperNode* m : h.members) {
    casts.push_back(std::make_unique<Broadcast>(*m->group(kGroup), bc, h.tb.rng().fork()));
  }
  casts[2]->on_deliver = [&](NodeId origin, BytesView) { seen_origin = origin; };
  casts[1]->publish(to_bytes("whodunit"));
  h.tb.run_for(2 * net::kMinute);
  EXPECT_EQ(seen_origin, h.members[1]->id());
}

TEST(MultiApp, ChordAndBroadcastShareOneGroup) {
  // Several protocols multiplexed over one PPSS instance via app ids.
  GroupHarness h(8, 3007);
  BroadcastConfig bc;
  std::vector<std::unique_ptr<Broadcast>> casts;
  for (WhisperNode* m : h.members) {
    casts.push_back(std::make_unique<Broadcast>(*m->group(kGroup), bc, h.tb.rng().fork()));
  }
  chord::TChordConfig tc;
  tc.cycle = 20 * net::kSecond;
  std::vector<std::unique_ptr<chord::TChord>> rings;
  for (WhisperNode* m : h.members) {
    rings.push_back(std::make_unique<chord::TChord>(h.tb.clock(), *m->group(kGroup), tc,
                                                    h.tb.rng().fork()));
    rings.back()->start();
  }
  int broadcast_got = 0;
  casts[3]->on_deliver = [&](NodeId, BytesView) { ++broadcast_got; };
  casts[0]->publish(to_bytes("both at once"));
  h.tb.run_for(8 * net::kMinute);
  EXPECT_EQ(broadcast_got, 1);
  // The ring converged despite sharing the group with broadcast traffic.
  std::size_t with_successor = 0;
  for (auto& r : rings) with_successor += r->successor().has_value() ? 1 : 0;
  EXPECT_EQ(with_successor, rings.size());
}

}  // namespace
}  // namespace whisper::overlay

#include "churn/churn.hpp"

#include <gtest/gtest.h>

namespace whisper::churn {
namespace {

struct ChurnFixture : ::testing::Test {
  sim::Simulator sim{3};
  std::size_t population = 1000;
  std::size_t killed = 0;
  std::size_t spawned = 0;

  ChurnEngine make_engine() {
    return ChurnEngine(
        sim,
        [this](std::size_t n) {
          const std::size_t k = std::min(n, population);
          population -= k;
          killed += k;
          return k;
        },
        [this](std::size_t n) {
          population += n;
          spawned += n;
        },
        [this] { return population; });
  }
};

TEST_F(ChurnFixture, ConstantChurnKillsExpectedFraction) {
  ChurnEngine engine = make_engine();
  ChurnPhase phase;
  phase.start = 0;
  phase.end = 15 * sim::kMinute;
  phase.interval = sim::kMinute;
  phase.leave_fraction = 0.01;  // 1% per minute
  engine.schedule(phase);
  sim.run();
  // 15 ticks of ~10 nodes each.
  EXPECT_NEAR(static_cast<double>(killed), 150.0, 5.0);
  EXPECT_EQ(killed, spawned);            // 100% replacement
  EXPECT_EQ(population, 1000u);          // net size stable
}

TEST_F(ChurnFixture, ReplacementRatioZeroShrinksNetwork) {
  ChurnEngine engine = make_engine();
  ChurnPhase phase;
  phase.start = 0;
  phase.end = 10 * sim::kMinute;
  phase.interval = sim::kMinute;
  phase.leave_fraction = 0.1;
  phase.replacement_ratio = 0.0;
  engine.schedule(phase);
  sim.run();
  EXPECT_EQ(spawned, 0u);
  EXPECT_LT(population, 1000u);
}

TEST_F(ChurnFixture, PhaseWindowRespected) {
  ChurnEngine engine = make_engine();
  ChurnPhase phase;
  phase.start = 5 * sim::kMinute;
  phase.end = 8 * sim::kMinute;
  phase.interval = sim::kMinute;
  phase.leave_fraction = 0.01;
  engine.schedule(phase);
  sim.run_until(4 * sim::kMinute);
  EXPECT_EQ(killed, 0u);
  sim.run();
  // Ticks at 5, 6, 7 minutes only.
  EXPECT_NEAR(static_cast<double>(killed), 30.0, 2.0);
}

TEST_F(ChurnFixture, FractionalRatesAccumulate) {
  population = 100;
  ChurnEngine engine = make_engine();
  ChurnPhase phase;
  phase.start = 0;
  phase.end = 100 * sim::kMinute;
  phase.interval = sim::kMinute;
  phase.leave_fraction = 0.002;  // 0.2 nodes/tick: relies on carry
  engine.schedule(phase);
  sim.run();
  // 100 ticks * 0.2 = ~20 leavers despite each tick rounding to 0.
  EXPECT_NEAR(static_cast<double>(killed), 20.0, 3.0);
}

TEST_F(ChurnFixture, MassJoinSpreadsOverWindow) {
  ChurnEngine engine = make_engine();
  engine.schedule_join(0, 30 * sim::kSecond, 100);
  sim.run_until(15 * sim::kSecond);
  EXPECT_GT(spawned, 30u);
  EXPECT_LT(spawned, 70u);
  sim.run();
  EXPECT_EQ(spawned, 100u);
}

TEST_F(ChurnFixture, ZeroRatePhaseIgnored) {
  ChurnEngine engine = make_engine();
  ChurnPhase phase;
  phase.start = 0;
  phase.end = 10 * sim::kMinute;
  phase.leave_fraction = 0.0;
  engine.schedule(phase);
  sim.run();
  EXPECT_EQ(killed, 0u);
}

TEST_F(ChurnFixture, TotalsTracked) {
  ChurnEngine engine = make_engine();
  ChurnPhase phase;
  phase.start = 0;
  phase.end = 5 * sim::kMinute;
  phase.interval = sim::kMinute;
  phase.leave_fraction = 0.01;
  engine.schedule(phase);
  sim.run();
  EXPECT_EQ(engine.total_killed(), killed);
  EXPECT_EQ(engine.total_spawned(), spawned);
}

}  // namespace
}  // namespace whisper::churn

#include "churn/churn.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace whisper::churn {
namespace {

struct ChurnFixture : ::testing::Test {
  sim::Simulator sim{3};
  std::size_t population = 1000;
  std::size_t killed = 0;
  std::size_t spawned = 0;

  ChurnEngine make_engine() {
    return ChurnEngine(
        sim,
        [this](std::size_t n) {
          const std::size_t k = std::min(n, population);
          population -= k;
          killed += k;
          return k;
        },
        [this](std::size_t n) {
          population += n;
          spawned += n;
        },
        [this] { return population; });
  }
};

TEST_F(ChurnFixture, ConstantChurnKillsExpectedFraction) {
  ChurnEngine engine = make_engine();
  ChurnPhase phase;
  phase.start = 0;
  phase.end = 15 * net::kMinute;
  phase.interval = net::kMinute;
  phase.leave_fraction = 0.01;  // 1% per minute
  engine.schedule(phase);
  sim.run();
  // 15 ticks of ~10 nodes each.
  EXPECT_NEAR(static_cast<double>(killed), 150.0, 5.0);
  EXPECT_EQ(killed, spawned);            // 100% replacement
  EXPECT_EQ(population, 1000u);          // net size stable
}

TEST_F(ChurnFixture, ReplacementRatioZeroShrinksNetwork) {
  ChurnEngine engine = make_engine();
  ChurnPhase phase;
  phase.start = 0;
  phase.end = 10 * net::kMinute;
  phase.interval = net::kMinute;
  phase.leave_fraction = 0.1;
  phase.replacement_ratio = 0.0;
  engine.schedule(phase);
  sim.run();
  EXPECT_EQ(spawned, 0u);
  EXPECT_LT(population, 1000u);
}

TEST_F(ChurnFixture, PhaseWindowRespected) {
  ChurnEngine engine = make_engine();
  ChurnPhase phase;
  phase.start = 5 * net::kMinute;
  phase.end = 8 * net::kMinute;
  phase.interval = net::kMinute;
  phase.leave_fraction = 0.01;
  engine.schedule(phase);
  sim.run_until(4 * net::kMinute);
  EXPECT_EQ(killed, 0u);
  sim.run();
  // Ticks at 5, 6, 7 minutes only.
  EXPECT_NEAR(static_cast<double>(killed), 30.0, 2.0);
}

TEST_F(ChurnFixture, FractionalRatesAccumulate) {
  population = 100;
  ChurnEngine engine = make_engine();
  ChurnPhase phase;
  phase.start = 0;
  phase.end = 100 * net::kMinute;
  phase.interval = net::kMinute;
  phase.leave_fraction = 0.002;  // 0.2 nodes/tick: relies on carry
  engine.schedule(phase);
  sim.run();
  // 100 ticks * 0.2 = ~20 leavers despite each tick rounding to 0.
  EXPECT_NEAR(static_cast<double>(killed), 20.0, 3.0);
}

TEST_F(ChurnFixture, MassJoinSpreadsOverWindow) {
  ChurnEngine engine = make_engine();
  engine.schedule_join(0, 30 * net::kSecond, 100);
  sim.run_until(15 * net::kSecond);
  EXPECT_GT(spawned, 30u);
  EXPECT_LT(spawned, 70u);
  sim.run();
  EXPECT_EQ(spawned, 100u);
}

TEST_F(ChurnFixture, ZeroRatePhaseIgnored) {
  ChurnEngine engine = make_engine();
  ChurnPhase phase;
  phase.start = 0;
  phase.end = 10 * net::kMinute;
  phase.leave_fraction = 0.0;
  engine.schedule(phase);
  sim.run();
  EXPECT_EQ(killed, 0u);
}

TEST_F(ChurnFixture, FractionalCarryNeverLosesLeavers) {
  // Property: over any phase, the carry mechanism makes total kills land
  // within one node of exact_rate * ticks — fractions accumulate, they are
  // neither dropped (rounding down every tick) nor double-counted.
  const double fractions[] = {0.0004, 0.0017, 0.003, 0.0049, 0.0101};
  for (const double f : fractions) {
    killed = spawned = 0;
    population = 1000;
    ChurnEngine engine(
        sim, [this](std::size_t n) { killed += n; return n; },
        [this](std::size_t n) { spawned += n; }, [this] { return population; });
    ChurnPhase phase;
    phase.start = sim.now();
    phase.end = phase.start + 200 * net::kMinute;
    phase.interval = net::kMinute;
    phase.leave_fraction = f;
    // Population held constant by the lambdas above, so the expected total
    // is exactly fraction * 1000 * 200 ticks.
    engine.schedule(phase);
    sim.run();
    const double expected = f * 1000.0 * 200.0;
    EXPECT_NEAR(static_cast<double>(engine.total_killed()), expected, 1.0)
        << "fraction=" << f;
  }
}

TEST_F(ChurnFixture, ReplacementRatioScalesJoiners) {
  // Property: spawned ~= killed * ratio for sub- and super-unity ratios.
  const double ratios[] = {0.0, 0.5, 1.0, 1.5};
  for (const double r : ratios) {
    killed = spawned = 0;
    population = 1000;
    ChurnEngine engine = make_engine();
    ChurnPhase phase;
    phase.start = sim.now();
    phase.end = phase.start + 50 * net::kMinute;
    phase.interval = net::kMinute;
    phase.leave_fraction = 0.01;
    phase.replacement_ratio = r;
    engine.schedule(phase);
    sim.run_until(phase.end);
    ASSERT_GT(engine.total_killed(), 100u);
    // Per-tick llround wobbles by at most half a node per tick.
    EXPECT_NEAR(static_cast<double>(engine.total_spawned()),
                static_cast<double>(engine.total_killed()) * r,
                0.5 * 50 + 1)
        << "ratio=" << r;
  }
}

TEST_F(ChurnFixture, TotalsTracked) {
  ChurnEngine engine = make_engine();
  ChurnPhase phase;
  phase.start = 0;
  phase.end = 5 * net::kMinute;
  phase.interval = net::kMinute;
  phase.leave_fraction = 0.01;
  engine.schedule(phase);
  sim.run();
  EXPECT_EQ(engine.total_killed(), killed);
  EXPECT_EQ(engine.total_spawned(), spawned);
}

}  // namespace
}  // namespace whisper::churn

// Durable-store tests (DESIGN.md §14): CRC journal framing, torn-tail
// tolerance at every byte boundary, snapshot atomicity, and full
// NodeState round-trips including keys that must keep signing after
// restore.
#include "store/state.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include <unistd.h>

#include "crypto/random.hpp"
#include "crypto/rsa.hpp"
#include "ppss/group.hpp"

namespace whisper::store {
namespace {

/// Fresh scratch directory per test, removed on teardown.
struct StoreTest : ::testing::Test {
  std::string dir;

  void SetUp() override {
    char tmpl[] = "/tmp/whisper_store_test.XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir = tmpl;
  }
  void TearDown() override {
    const std::string cmd = "rm -rf '" + dir + "'";
    if (dir.rfind("/tmp/whisper_store_test.", 0) == 0) (void)!std::system(cmd.c_str());
  }

  std::string path(const std::string& base) const { return dir + "/" + base; }

  static Bytes file_bytes(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    Bytes out((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    return out;
  }

  static void write_bytes(const std::string& p, BytesView data) {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
  }
};

// --- Journal framing. ---

TEST_F(StoreTest, JournalRecordsRoundTrip) {
  Bytes stream;
  for (std::uint8_t t = 1; t <= 3; ++t) {
    const Bytes payload(t * 5, static_cast<std::uint8_t>(0xa0 + t));
    const Bytes frame = encode_record(t, payload);
    stream.insert(stream.end(), frame.begin(), frame.end());
  }
  const JournalReplay replay = decode_journal(stream);
  ASSERT_EQ(replay.records.size(), 3u);
  EXPECT_FALSE(replay.torn_tail);
  EXPECT_EQ(replay.consumed, stream.size());
  for (std::uint8_t t = 1; t <= 3; ++t) {
    EXPECT_EQ(replay.records[t - 1].type, t);
    EXPECT_EQ(replay.records[t - 1].payload,
              Bytes(t * 5u, static_cast<std::uint8_t>(0xa0 + t)));
  }
}

TEST_F(StoreTest, TornTailToleratedAtEveryByteBoundary) {
  // A crash can truncate the journal at ANY byte. Whatever the cut point,
  // decode must keep every complete frame before it and flag the rest as a
  // torn tail — never crash, never misparse.
  std::vector<std::size_t> boundaries = {0};
  Bytes stream;
  for (std::uint8_t t = 1; t <= 3; ++t) {
    const Bytes frame = encode_record(t, Bytes(4 * t, t));
    stream.insert(stream.end(), frame.begin(), frame.end());
    boundaries.push_back(stream.size());
  }
  for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
    const JournalReplay replay =
        decode_journal(BytesView(stream.data(), cut));
    std::size_t complete = 0;
    while (complete + 1 < boundaries.size() && boundaries[complete + 1] <= cut) {
      ++complete;
    }
    EXPECT_EQ(replay.records.size(), complete) << "cut at " << cut;
    EXPECT_EQ(replay.consumed, boundaries[complete]) << "cut at " << cut;
    EXPECT_EQ(replay.torn_tail, cut != boundaries[complete]) << "cut at " << cut;
  }
}

TEST_F(StoreTest, CorruptedPayloadFailsCrcAndStopsReplay) {
  Bytes stream;
  for (std::uint8_t t = 1; t <= 3; ++t) {
    const Bytes frame = encode_record(t, Bytes(16, t));
    stream.insert(stream.end(), frame.begin(), frame.end());
  }
  const std::size_t frame_len = stream.size() / 3;
  // Flip one payload byte inside the SECOND frame.
  stream[frame_len + 12] ^= 0x40;
  const JournalReplay replay = decode_journal(stream);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_TRUE(replay.torn_tail);
  EXPECT_EQ(replay.tail_error, DecodeError::kBadValue);
  EXPECT_EQ(replay.consumed, frame_len);
}

TEST_F(StoreTest, OversizedLengthIsCorruptionNotAllocation) {
  Bytes frame = encode_record(1, Bytes(8, 0x11));
  // Rewrite the length field to claim a payload far over the cap.
  const std::uint32_t huge = kMaxRecordBytes + 1;
  frame[1] = static_cast<std::uint8_t>(huge & 0xff);
  frame[2] = static_cast<std::uint8_t>((huge >> 8) & 0xff);
  frame[3] = static_cast<std::uint8_t>((huge >> 16) & 0xff);
  frame[4] = static_cast<std::uint8_t>((huge >> 24) & 0xff);
  const JournalReplay replay = decode_journal(frame);
  EXPECT_TRUE(replay.records.empty());
  EXPECT_TRUE(replay.torn_tail);
  EXPECT_EQ(replay.tail_error, DecodeError::kOversized);
}

TEST_F(StoreTest, JournalFileTruncatesTornTailOnOpen) {
  const std::string jpath = path("journal.bin");
  {
    JournalFile j;
    ASSERT_TRUE(j.open(jpath).has_value());
    ASSERT_TRUE(j.append(7, Bytes(10, 0x22)));
    ASSERT_TRUE(j.append(8, Bytes(20, 0x33)));
    j.close();
  }
  // Crash mid-append: chop the file inside the second frame.
  Bytes raw = file_bytes(jpath);
  const std::size_t first_frame = 9 + 10;
  write_bytes(jpath, BytesView(raw.data(), first_frame + 5));

  JournalFile j;
  const auto replay = j.open(jpath);
  ASSERT_TRUE(replay.has_value());
  ASSERT_EQ(replay->records.size(), 1u);
  EXPECT_EQ(replay->records[0].type, 7);
  EXPECT_EQ(j.torn_tails_truncated(), 1u);
  // The torn bytes are gone from disk, and appends land cleanly after the
  // surviving frame.
  ASSERT_TRUE(j.append(9, Bytes(5, 0x44)));
  j.close();
  const JournalReplay after = decode_journal(file_bytes(jpath));
  ASSERT_EQ(after.records.size(), 2u);
  EXPECT_FALSE(after.torn_tail);
  EXPECT_EQ(after.records[1].type, 9);
}

TEST_F(StoreTest, AtomicWriteFileRoundTrips) {
  const std::string p = path("blob.bin");
  const Bytes data{1, 2, 3, 250, 251, 252};
  std::string error;
  ASSERT_TRUE(atomic_write_file(p, data, &error)) << error;
  EXPECT_EQ(read_file(p), std::optional<Bytes>(data));
  // Overwrite atomically; no temp file debris survives.
  const Bytes next{9, 9, 9};
  ASSERT_TRUE(atomic_write_file(p, next, &error)) << error;
  EXPECT_EQ(read_file(p), std::optional<Bytes>(next));
  EXPECT_NE(::access(p.c_str(), F_OK), -1);
  EXPECT_EQ(::access((p + ".tmp").c_str(), F_OK), -1);
}

// --- NodeState serialization. ---

NodeState sample_state(std::uint64_t seed) {
  crypto::Drbg drbg(seed);
  NodeState st;
  st.id = NodeId{42};
  st.is_public = true;
  st.endpoint = Endpoint{(127u << 24) | 1, 40123};
  st.incarnation = 3;
  st.identity = crypto::RsaKeyPair::generate(512, drbg);

  crypto::RsaKeyPair group_key = crypto::RsaKeyPair::generate(512, drbg);
  StoredGroup leader_side;
  leader_side.group = GroupId{7};
  leader_side.is_leader = true;
  leader_side.epochs.emplace_back(1, group_key.pub);
  leader_side.passport = ppss::issue_passport(GroupId{7}, 1, NodeId{42}, group_key);
  leader_side.group_key = group_key;
  st.groups.push_back(leader_side);

  StoredGroup member_side;
  member_side.group = GroupId{8};
  member_side.epochs.emplace_back(1, group_key.pub);
  member_side.epochs.emplace_back(2, st.identity.pub);
  member_side.passport = ppss::issue_passport(GroupId{8}, 1, NodeId{42}, group_key);
  member_side.accreditation =
      ppss::issue_accreditation(GroupId{8}, 1, NodeId{42}, group_key);
  wcl::RemotePeer entry;
  entry.card.id = NodeId{1};
  entry.card.addr = Endpoint{(127u << 24) | 1, 40001};
  entry.card.is_public = true;
  entry.key = group_key.pub;
  st.groups.push_back(member_side);
  st.groups.back().entry_point = entry;

  st.peer_hints.push_back(pss::ContactCard{NodeId{5},
                                           Endpoint{(10u << 24) | 9, 5555},
                                           false, NodeId{6}});
  return st;
}

TEST_F(StoreTest, NodeStateRoundTripsEveryField) {
  const NodeState st = sample_state(101);
  DecodeError why = DecodeError::kNone;
  const auto back = NodeState::deserialize(st.serialize(), &why);
  ASSERT_TRUE(back.has_value()) << static_cast<int>(why);
  EXPECT_EQ(back->id, st.id);
  EXPECT_EQ(back->is_public, st.is_public);
  EXPECT_EQ(back->endpoint, st.endpoint);
  EXPECT_EQ(back->incarnation, st.incarnation);
  ASSERT_EQ(back->groups.size(), 2u);
  const StoredGroup& lg = back->groups[0];
  EXPECT_TRUE(lg.is_leader);
  ASSERT_TRUE(lg.group_key.has_value());
  EXPECT_FALSE(lg.accreditation.has_value());
  const StoredGroup& mg = back->groups[1];
  EXPECT_FALSE(mg.is_leader);
  ASSERT_EQ(mg.epochs.size(), 2u);
  EXPECT_EQ(mg.epochs[1].first, 2u);
  ASSERT_TRUE(mg.accreditation.has_value());
  ASSERT_TRUE(mg.entry_point.has_value());
  EXPECT_EQ(mg.entry_point->card.id, NodeId{1});
  ASSERT_EQ(back->peer_hints.size(), 1u);
  EXPECT_EQ(back->peer_hints[0], st.peer_hints[0]);

  // Restored passports must still verify against the restored keyring —
  // that is the whole point of persisting the epoch history.
  ppss::GroupKeyring keyring(mg.group);
  for (const auto& [epoch, key] : mg.epochs) keyring.add_epoch(epoch, key);
  EXPECT_TRUE(keyring.verify_passport(mg.passport));
}

TEST_F(StoreTest, RestoredIdentityKeypairStillSigns) {
  const NodeState st = sample_state(202);
  const auto back = NodeState::deserialize(st.serialize());
  ASSERT_TRUE(back.has_value());
  // Sign with the restored private key, verify with the ORIGINAL public
  // key: all CRT components survived the round trip.
  const Bytes msg = to_bytes("still me after kill -9");
  const Bytes sig = crypto::rsa_sign(back->identity, msg);
  EXPECT_TRUE(crypto::rsa_verify(st.identity.pub, msg, sig));
}

TEST_F(StoreTest, NodeStateRejectsDamage) {
  const NodeState st = sample_state(303);
  const Bytes good = st.serialize();
  DecodeError why = DecodeError::kNone;

  Bytes bad_magic = good;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(NodeState::deserialize(bad_magic, &why).has_value());

  Bytes trailing = good;
  trailing.push_back(0);
  EXPECT_FALSE(NodeState::deserialize(trailing, &why).has_value());

  Bytes truncated(good.begin(), good.begin() + static_cast<long>(good.size() / 2));
  EXPECT_FALSE(NodeState::deserialize(truncated, &why).has_value());

  EXPECT_FALSE(NodeState::deserialize(Bytes{}, &why).has_value());
}

// --- NodeStateStore: snapshot + journal over a directory. ---

TEST_F(StoreTest, FreshDirectoryHasNoState) {
  NodeStateStore store;
  ASSERT_TRUE(store.open(dir + "/fresh")) << store.last_error();
  EXPECT_FALSE(store.has_state());
  EXPECT_EQ(store.journal_records_replayed(), 0u);
}

TEST_F(StoreTest, SnapshotCommitSurvivesReopen) {
  {
    NodeStateStore store;
    ASSERT_TRUE(store.open(dir)) << store.last_error();
    store.state() = sample_state(404);
    ASSERT_TRUE(store.commit_snapshot()) << store.last_error();
  }
  NodeStateStore store;
  ASSERT_TRUE(store.open(dir)) << store.last_error();
  ASSERT_TRUE(store.has_state());
  EXPECT_EQ(store.state().id, NodeId{42});
  EXPECT_EQ(store.state().incarnation, 3u);
  ASSERT_EQ(store.state().groups.size(), 2u);
  EXPECT_EQ(store.journal_records_replayed(), 0u);
}

TEST_F(StoreTest, JournalRecordsReplayOverSnapshot) {
  {
    NodeStateStore store;
    ASSERT_TRUE(store.open(dir)) << store.last_error();
    store.state() = sample_state(505);
    store.state().incarnation = 1;
    ASSERT_TRUE(store.commit_snapshot());
    // Post-snapshot deltas: a restart bump, a group update, fresh hints.
    ASSERT_TRUE(store.record_incarnation(2)) << store.last_error();
    StoredGroup g = store.state().groups[1];
    g.epochs.emplace_back(3, store.state().identity.pub);
    ASSERT_TRUE(store.record_group(g));
    ASSERT_TRUE(store.record_peer_hints({pss::ContactCard{
        NodeId{77}, Endpoint{(127u << 24) | 1, 7777}, true, kNilNode}}));
  }
  NodeStateStore store;
  ASSERT_TRUE(store.open(dir)) << store.last_error();
  ASSERT_TRUE(store.has_state());
  EXPECT_EQ(store.journal_records_replayed(), 3u);
  EXPECT_EQ(store.state().incarnation, 2u);
  ASSERT_EQ(store.state().groups.size(), 2u);
  EXPECT_EQ(store.state().groups[1].epochs.size(), 3u);
  ASSERT_EQ(store.state().peer_hints.size(), 1u);
  EXPECT_EQ(store.state().peer_hints[0].id, NodeId{77});

  // A snapshot commit folds the journal in and resets it.
  ASSERT_TRUE(store.commit_snapshot());
  NodeStateStore reopened;
  ASSERT_TRUE(reopened.open(dir));
  EXPECT_EQ(reopened.journal_records_replayed(), 0u);
  EXPECT_EQ(reopened.state().incarnation, 2u);
}

TEST_F(StoreTest, TornJournalTailIsTruncatedOnOpen) {
  {
    NodeStateStore store;
    ASSERT_TRUE(store.open(dir));
    store.state() = sample_state(606);
    store.state().incarnation = 1;
    ASSERT_TRUE(store.commit_snapshot());
    ASSERT_TRUE(store.record_incarnation(2));
    ASSERT_TRUE(store.record_incarnation(3));
  }
  // Crash mid-append: drop the last 3 bytes of the journal.
  Bytes raw = file_bytes(dir + "/journal.bin");
  ASSERT_GT(raw.size(), 3u);
  write_bytes(dir + "/journal.bin", BytesView(raw.data(), raw.size() - 3));

  NodeStateStore store;
  ASSERT_TRUE(store.open(dir)) << store.last_error();
  EXPECT_EQ(store.journal_records_replayed(), 1u);  // the bump to 2 survived
  EXPECT_EQ(store.state().incarnation, 2u);
  EXPECT_EQ(store.torn_tails_truncated(), 1u);
}

TEST_F(StoreTest, CorruptSnapshotIsReportedNotTrusted) {
  {
    NodeStateStore store;
    ASSERT_TRUE(store.open(dir));
    store.state() = sample_state(707);
    ASSERT_TRUE(store.commit_snapshot());
  }
  // Structural damage is what open() can detect (there is no whole-file
  // checksum on the snapshot): a truncated file and a clobbered magic.
  const Bytes raw = file_bytes(dir + "/snapshot.bin");
  write_bytes(dir + "/snapshot.bin", BytesView(raw.data(), raw.size() / 2));
  {
    NodeStateStore store;
    EXPECT_FALSE(store.open(dir));
    EXPECT_FALSE(store.last_error().empty());
  }
  Bytes bad_magic = raw;
  bad_magic[0] ^= 0xff;
  write_bytes(dir + "/snapshot.bin", bad_magic);
  {
    NodeStateStore store;
    EXPECT_FALSE(store.open(dir));
    EXPECT_FALSE(store.last_error().empty());
  }
}

TEST_F(StoreTest, UpsertGroupReplacesById) {
  NodeState st = sample_state(808);
  StoredGroup replacement = st.groups[0];
  replacement.is_leader = false;
  replacement.group_key.reset();
  st.upsert_group(replacement);
  ASSERT_EQ(st.groups.size(), 2u);
  EXPECT_FALSE(st.groups[0].is_leader);
  EXPECT_FALSE(st.find_group(GroupId{7})->group_key.has_value());
  StoredGroup novel;
  novel.group = GroupId{99};
  st.upsert_group(novel);
  EXPECT_EQ(st.groups.size(), 3u);
  EXPECT_NE(st.find_group(GroupId{99}), nullptr);
  EXPECT_EQ(st.find_group(GroupId{1000}), nullptr);
}

}  // namespace
}  // namespace whisper::store

// End-to-end causal tracing: flight records from full-stack runs must
// (a) decompose per-hop latency to the measured RTT, (b) be byte-identical
// across same-seed runs, (c) leave protocol wire bytes untouched, (d)
// survive fault injection with correct attribution, and (e) uphold the
// anonymity claim the auditor measures.
#include <gtest/gtest.h>

#include "faults/faults.hpp"
#include "telemetry/audit.hpp"
#include "telemetry/flight.hpp"
#include "whisper/testbed.hpp"

namespace whisper {
namespace {

constexpr GroupId kGroup{61717};

TestbedConfig base_config(std::uint64_t seed) {
  TestbedConfig cfg;
  cfg.initial_nodes = 30;
  cfg.node.pss.pi_min_public = 3;
  cfg.node.wcl.pi = 3;
  cfg.node.ppss.cycle = 30 * net::kSecond;
  cfg.seed = seed;
  cfg.flight = true;
  return cfg;
}

void form_group(WhisperTestbed& tb, std::uint64_t seed, int members) {
  auto nodes = tb.alive_nodes();
  crypto::Drbg d(seed);
  auto& fg = nodes[0]->create_group(kGroup, crypto::RsaKeyPair::generate(512, d));
  for (int i = 1; i <= members; ++i) {
    nodes[static_cast<std::size_t>(i)]->join_group(
        kGroup, *fg.invite(nodes[static_cast<std::size_t>(i)]->id()), fg.self_descriptor());
  }
}

TEST(FlightTrace, PerHopLatenciesSumToMeasuredRtt) {
  TestbedConfig cfg = base_config(9001);
  WhisperTestbed tb(cfg);
  tb.run_for(4 * net::kMinute);
  form_group(tb, cfg.seed, 5);
  tb.run_for(6 * net::kMinute);

  const auto records = tb.flight().assemble();
  std::size_t delivered = 0;
  for (const auto& rec : records) {
    if (rec.layer != telemetry::TraceLayer::kWcl || rec.outcome != "delivered") continue;
    ++delivered;
    const std::uint64_t d = rec.decomposed_us();
    const std::uint64_t err = rec.rtt_us > d ? rec.rtt_us - d : d - rec.rtt_us;
    EXPECT_LE(err, 1000u) << "trace " << rec.trace_id << ": rtt " << rec.rtt_us
                          << "us vs decomposed " << d << "us";
    EXPECT_GE(rec.hops.size(), 2u);  // at least one forward hop and the ACK
    EXPECT_GT(rec.end_ts, rec.begin_ts);
  }
  EXPECT_GT(delivered, 50u);  // the run really exercised confidential sends
  EXPECT_EQ(tb.flight().dropped(), 0u);

  // Roots (PPSS exchanges/joins) parent the WCL messages they caused.
  std::size_t parented = 0;
  for (const auto& rec : records) {
    if (rec.layer == telemetry::TraceLayer::kWcl && rec.root != 0) ++parented;
  }
  EXPECT_GT(parented, 0u);
}

TEST(FlightTrace, SameSeedRunsExportByteIdenticalRecords) {
  auto run = [] {
    TestbedConfig cfg = base_config(9002);
    WhisperTestbed tb(cfg);
    tb.run_for(4 * net::kMinute);
    form_group(tb, cfg.seed, 5);
    tb.run_for(5 * net::kMinute);
    return telemetry::to_jsonl(tb.flight().assemble());
  };
  const std::string a = run();
  const std::string b = run();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(telemetry::flight_digest(a), telemetry::flight_digest(b));
  EXPECT_EQ(a, b);
}

// The zero-wire-byte guarantee: with the tap observing every datagram's
// payload bytes, a traced run and a dark run must put byte-identical
// traffic on the wire. TraceContext rides simulator-side metadata only.
TEST(FlightTrace, TracingAddsZeroBytesToWirePayloads) {
  auto run = [](bool flight) {
    TestbedConfig cfg = base_config(9003);
    cfg.flight = flight;
    WhisperTestbed tb(cfg);
    std::uint64_t digest = 1469598103934665603ull;
    std::uint64_t packets = 0;
    tb.set_tap([&](const net::Datagram& dgram) {
      ++packets;
      for (std::uint8_t byte : dgram.payload) {
        digest ^= byte;
        digest *= 1099511628211ull;
      }
    });
    tb.run_for(4 * net::kMinute);
    form_group(tb, cfg.seed, 5);
    tb.run_for(5 * net::kMinute);
    return std::make_pair(digest, packets);
  };
  const auto dark = run(false);
  const auto lit = run(true);
  EXPECT_GT(dark.second, 1000u);
  EXPECT_EQ(dark.second, lit.second);  // same schedule, same packet count
  EXPECT_EQ(dark.first, lit.first);    // same bytes in the same order
}

TEST(FlightTrace, FaultInjectionIsAttributedInRecords) {
  TestbedConfig cfg = base_config(9004);
  WhisperTestbed tb(cfg);
  tb.run_for(4 * net::kMinute);
  form_group(tb, cfg.seed, 5);
  tb.run_for(2 * net::kMinute);

  // A rough window: drop a third of packets, duplicate and jitter the rest.
  faults::FaultFabric& ff = tb.install_fault_fabric();
  const net::Time t0 = tb.clock().now();
  faults::FaultSpec loss;
  loss.kind = faults::FaultKind::kLoss;
  loss.start = t0;
  loss.end = t0 + 3 * net::kMinute;
  loss.probability = 0.3;
  faults::FaultSpec dup;
  dup.kind = faults::FaultKind::kDuplicate;
  dup.start = t0;
  dup.end = t0 + 3 * net::kMinute;
  dup.probability = 0.2;
  faults::FaultSpec reorder;
  reorder.kind = faults::FaultKind::kReorder;
  reorder.start = t0;
  reorder.end = t0 + 3 * net::kMinute;
  reorder.probability = 0.2;
  reorder.delay = 50 * net::kMillisecond;
  ff.schedule_all({loss, dup, reorder});
  tb.run_for(5 * net::kMinute);

  const auto records = tb.flight().assemble();
  std::size_t fault_touched = 0, retransmitted = 0, dropped_hops = 0;
  for (const auto& rec : records) {
    if (rec.layer != telemetry::TraceLayer::kWcl) continue;
    if (!rec.faults.empty()) ++fault_touched;
    if (rec.attempts > 1) {
      ++retransmitted;
      EXPECT_TRUE(rec.karn_ambiguous);
    }
    for (const auto& hop : rec.hops) {
      if (hop.status == "loss" || hop.status == "fault") ++dropped_hops;
    }
    // Retransmits under duplication/reordering must still decompose sanely.
    if (rec.outcome == "delivered") {
      const std::uint64_t d = rec.decomposed_us();
      const std::uint64_t err = rec.rtt_us > d ? rec.rtt_us - d : d - rec.rtt_us;
      EXPECT_LE(err, 60000u) << "trace " << rec.trace_id;  // reorder jitter bound
    }
  }
  EXPECT_GT(fault_touched, 0u);   // fault events reached the right traces
  EXPECT_GT(retransmitted, 0u);   // loss forced WCL retries
  EXPECT_GT(dropped_hops, 0u);    // drops carry their reason
}

TEST(FlightTrace, RelayCrashDropsAreAttributed) {
  TestbedConfig cfg = base_config(9005);
  cfg.initial_nodes = 40;
  WhisperTestbed tb(cfg);
  tb.run_for(4 * net::kMinute);
  form_group(tb, cfg.seed, 6);
  tb.run_for(2 * net::kMinute);

  faults::FaultFabric& ff = tb.install_fault_fabric();
  faults::FaultSpec crash;
  crash.kind = faults::FaultKind::kCrash;
  crash.start = tb.clock().now() + net::kSecond;
  crash.count = 2;  // two relay crashes
  ff.schedule_all({crash});
  tb.run_for(5 * net::kMinute);

  // Packets to the crashed relays die with a detach/filter drop; the traces
  // that hit them must record it rather than silently losing the hop.
  const auto records = tb.flight().assemble();
  std::size_t crash_drops = 0;
  for (const auto& rec : records) {
    for (const auto& hop : rec.hops) {
      if (hop.status == "detach" || hop.status == "filter") ++crash_drops;
    }
  }
  EXPECT_GT(crash_drops, 0u);
}

// The paper's anonymity claim, now a regression test: a single
// honest-but-curious relay observing its own traffic can link zero
// sender/receiver pairs it does not itself own.
TEST(FlightTrace, SingleHonestButCuriousRelayLinksNothing) {
  TestbedConfig cfg = base_config(9006);
  cfg.initial_nodes = 50;
  WhisperTestbed tb(cfg);
  tb.run_for(4 * net::kMinute);
  form_group(tb, cfg.seed, 8);
  tb.run_for(6 * net::kMinute);

  const auto records = tb.flight().assemble();
  telemetry::Vantage vantage;
  for (WhisperNode* n : tb.alive_public_nodes()) vantage.relays.insert(n->id().value);
  ASSERT_FALSE(vantage.relays.empty());
  const telemetry::AuditReport report =
      telemetry::audit(records, vantage, tb.all_nodes().size());
  ASSERT_FALSE(report.relays.empty());
  std::size_t seen = 0;
  for (const auto& relay : report.relays) {
    EXPECT_EQ(relay.linkable, 0u) << "relay " << relay.relay
                                  << " linked a sender to a receiver";
    seen += relay.messages_seen;
  }
  EXPECT_GT(seen, 0u);  // the relays really carried audited traffic
}

}  // namespace
}  // namespace whisper

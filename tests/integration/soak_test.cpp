// Long-running full-stack soak: the entire WHISPER stack under sustained
// churn must keep the overlay connected, the group communicating, and the
// Π invariants holding — the paper's operating regime compressed into one
// test.
#include <gtest/gtest.h>

#include "churn/churn.hpp"
#include "pss/metrics.hpp"
#include "whisper/testbed.hpp"

namespace whisper {
namespace {

constexpr GroupId kGroup{60606};

TEST(Soak, FullStackSurvivesSustainedChurn) {
  TestbedConfig cfg;
  cfg.initial_nodes = 80;
  cfg.natted_fraction = 0.7;
  cfg.node.pss.pi_min_public = 3;
  cfg.node.wcl.pi = 3;
  cfg.node.ppss.cycle = 30 * net::kSecond;
  cfg.seed = 4242;
  WhisperTestbed tb(cfg);
  tb.run_for(5 * net::kMinute);

  // One private group led by a protected P-node; a third of nodes join.
  WhisperNode* leader_node = tb.alive_public_nodes()[0];
  crypto::Drbg d(1);
  ppss::Ppss& leader = leader_node->create_group(kGroup, crypto::RsaKeyPair::generate(512, d));
  Rng rng(7);
  std::size_t joined = 0;
  for (WhisperNode* n : tb.alive_nodes()) {
    if (n == leader_node || joined >= 25) continue;
    n->join_group(kGroup, *leader.invite(n->id()), leader.self_descriptor());
    ++joined;
  }
  tb.run_for(5 * net::kMinute);

  // Sustained 2%/min churn for 30 simulated minutes (group members and the
  // leader are spared so the group itself persists; the substrate below
  // them churns freely).
  std::unordered_set<NodeId> protected_ids{leader_node->id()};
  for (WhisperNode* n : tb.alive_nodes()) {
    if (n->group(kGroup) != nullptr) protected_ids.insert(n->id());
  }
  churn::ChurnEngine engine(
      tb.clock(),
      [&](std::size_t n) {
        std::size_t killed = 0;
        for (std::size_t i = 0; i < n; ++i) {
          for (int tries = 0; tries < 20; ++tries) {
            auto alive = tb.alive_nodes();
            WhisperNode* victim = alive[rng.pick_index(alive)];
            if (protected_ids.contains(victim->id())) continue;
            tb.kill_node(victim->id());
            ++killed;
            break;
          }
        }
        return killed;
      },
      [&](std::size_t n) {
        for (std::size_t i = 0; i < n; ++i) tb.spawn_node();
      },
      [&] { return tb.alive_count(); });
  churn::ChurnPhase phase;
  phase.start = tb.clock().now();
  phase.end = phase.start + 30 * net::kMinute;
  phase.leave_fraction = 0.02;
  engine.schedule(phase);
  tb.run_for(30 * net::kMinute);

  EXPECT_GT(engine.total_killed(), 30u);  // churn actually happened

  // 1. Population stable (100% replacement).
  EXPECT_NEAR(static_cast<double>(tb.alive_count()), 80.0, 8.0);

  // 2. Overlay still connected and healthy.
  auto graph = tb.overlay_snapshot();
  EXPECT_GT(pss::reachable_fraction(graph, leader_node->id()), 0.9);

  // 3. No stale references: views point (almost) only at live nodes.
  std::size_t total_refs = 0, dead_refs = 0;
  for (WhisperNode* n : tb.alive_nodes()) {
    for (const auto& e : n->pss().view().entries()) {
      ++total_refs;
      WhisperNode* target = tb.node(e.id());
      if (target == nullptr || !target->running()) ++dead_refs;
    }
  }
  EXPECT_LT(static_cast<double>(dead_refs), 0.2 * static_cast<double>(total_refs));

  // 4. N-nodes all have live relays.
  for (WhisperNode* n : tb.alive_nodes()) {
    if (!n->is_public()) {
      EXPECT_FALSE(n->transport().relay_lost()) << n->id().str();
    }
  }

  // 5. The group still communicates confidentially end-to-end.
  std::vector<ppss::Ppss*> members;
  for (WhisperNode* n : tb.alive_nodes()) {
    if (auto* g = n->group(kGroup); g != nullptr && g->joined()) members.push_back(g);
  }
  ASSERT_GE(members.size(), 2u);
  Bytes got;
  members[1]->on_app_message = [&](const wcl::RemotePeer&, BytesView p) {
    got.assign(p.begin(), p.end());
  };
  EXPECT_TRUE(members[0]->send_app_to(members[1]->self_descriptor(), to_bytes("still here")));
  tb.run_for(net::kMinute);
  EXPECT_EQ(got, to_bytes("still here"));
}

TEST(Soak, NetworkDrainsCleanly) {
  // After stopping every node, pending events drain without touching any
  // dead object (teardown safety under the simulator).
  TestbedConfig cfg;
  cfg.initial_nodes = 30;
  cfg.seed = 555;
  WhisperTestbed tb(cfg);
  tb.run_for(3 * net::kMinute);
  for (WhisperNode* n : tb.alive_nodes()) tb.kill_node(n->id());
  EXPECT_EQ(tb.alive_count(), 0u);
  // Drain everything still queued (timers were cancelled; deliveries drop).
  tb.run_for(10 * net::kMinute);
  EXPECT_EQ(tb.packets_delivered(), tb.packets_delivered());
}

}  // namespace
}  // namespace whisper

// Crash-restart on the simulation backend (DESIGN.md §14): the exact
// incarnation/rejoin machinery whisper_noded exercises on the UDP mesh,
// driven in virtual time. The test plays the role of the durable store:
// it captures what NodeStateStore would persist (key epochs, passport,
// accreditation, group key) before each crash and feeds it back to the
// restarted instance. Everything is deterministic — the same seed must
// produce the same recovery, byte for byte.
#include <gtest/gtest.h>

#include "whisper/testbed.hpp"

namespace whisper {
namespace {

constexpr GroupId kGroup{61616};

std::vector<std::pair<std::uint64_t, crypto::RsaPublicKey>> collect_epochs(
    const ppss::GroupKeyring& keyring) {
  std::vector<std::pair<std::uint64_t, crypto::RsaPublicKey>> out;
  for (std::uint64_t e = 1; e <= keyring.latest_epoch(); ++e) {
    if (auto key = keyring.key_for(e)) out.emplace_back(e, *key);
  }
  return out;
}

struct RunResult {
  // Semantic outcomes.
  bool all_joined = false;
  bool member_restarted = false;
  bool member_rejoined = false;
  bool member_redelivered = false;
  bool leader_noticed_restart = false;
  bool leader_resumed = false;
  bool post_leader_restart_delivery = false;
  std::uint32_t member_incarnation = 0;
  // Determinism digest.
  std::uint64_t pings = 0;
  std::uint64_t pings_after_leader_restart = 0;
  std::uint64_t overlay = 0;
  std::uint64_t restarts_observed = 0;
  std::uint64_t stale_rejects = 0;

  bool operator==(const RunResult&) const = default;
};

RunResult run_once(std::uint64_t seed) {
  RunResult out;

  TestbedConfig cfg;
  cfg.initial_nodes = 25;
  cfg.node.pss.pi_min_public = 3;
  cfg.node.wcl.pi = 3;
  cfg.node.ppss.cycle = 30 * net::kSecond;
  // Every node is epoch-aware from birth, as if booted with --state-dir:
  // peers can only recognize a restart of a node whose previous life
  // advertised a nonzero incarnation.
  cfg.node.incarnation = 1;
  cfg.seed = seed;
  WhisperTestbed tb(cfg);
  tb.run_for(5 * net::kMinute);

  // Found a group, enroll five members, and keep what the durable store
  // would keep: each member's accreditation and the leader's descriptor.
  auto nodes = tb.alive_nodes();
  crypto::Drbg drbg(seed ^ 0xc4a54);
  crypto::RsaKeyPair group_key = crypto::RsaKeyPair::generate(512, drbg);
  const crypto::RsaKeyPair group_key_copy = group_key;  // "persisted"
  WhisperNode* leader = nodes[0];
  auto& founded = leader->create_group(kGroup, std::move(group_key));
  const wcl::RemotePeer leader_desc = founded.self_descriptor();

  std::vector<WhisperNode*> members;
  std::vector<ppss::Accreditation> accreditations;
  for (int i = 1; i <= 5; ++i) {
    WhisperNode* m = nodes[static_cast<std::size_t>(i)];
    auto accreditation = founded.invite(m->id());
    if (!accreditation) return out;
    accreditations.push_back(*accreditation);
    m->join_group(kGroup, *accreditation, leader_desc);
    members.push_back(m);
  }
  tb.run_for(8 * net::kMinute);

  out.all_joined = true;
  for (WhisperNode* m : members) {
    auto* g = m->group(kGroup);
    if (g == nullptr || !g->joined()) out.all_joined = false;
  }
  if (!out.all_joined) return out;

  // Baseline delivery: every member pings the leader over an onion route.
  std::uint64_t pings_seen = 0;
  leader->group(kGroup)->on_app_message =
      [&pings_seen](const wcl::RemotePeer&, BytesView) { ++pings_seen; };
  for (WhisperNode* m : members) {
    m->group(kGroup)->send_app_to(leader_desc, to_bytes("ping"));
  }
  tb.run_for(2 * net::kMinute);

  // --- Crash a member. Capture what its state dir would hold, kill -9,
  // restart, resume, and re-join to re-validate the passport. ---
  WhisperNode* victim = members[2];
  const NodeId victim_id = victim->id();
  auto* victim_group = victim->group(kGroup);
  const auto epochs = collect_epochs(victim_group->keyring());
  const ppss::Passport passport = victim_group->passport();
  const ppss::Accreditation accreditation = accreditations[2];

  WhisperNode* fresh = tb.restart_node(victim_id);
  if (fresh == nullptr) return out;
  out.member_restarted = true;
  out.member_incarnation = fresh->transport().incarnation();

  auto& resumed = fresh->resume_group(kGroup, epochs, passport);
  resumed.join(accreditation, leader_desc);
  tb.run_for(3 * net::kMinute);
  out.member_rejoined = resumed.joined();

  // Post-recovery delivery from the restarted incarnation.
  const std::uint64_t pings_before = pings_seen;
  resumed.send_app_to(leader_desc, to_bytes("ping"));
  tb.run_for(2 * net::kMinute);
  out.member_redelivered = pings_seen > pings_before;
  out.pings = pings_seen;

  // The leader's transport must have recognized the bumped incarnation and
  // purged the victim's stale per-peer state.
  out.leader_noticed_restart = leader->transport().peer_restarts() >= 1;

  // --- Crash the leader. Resume with the persisted group key. ---
  const auto leader_epochs = collect_epochs(founded.keyring());
  const ppss::Passport leader_passport = founded.passport();
  WhisperNode* new_leader = tb.restart_node(leader->id());
  if (new_leader == nullptr) return out;
  auto& resumed_leadership = new_leader->resume_group(
      kGroup, leader_epochs, leader_passport, group_key_copy);
  out.leader_resumed =
      resumed_leadership.is_leader() && resumed_leadership.joined();

  std::uint64_t pings_reborn = 0;
  resumed_leadership.on_app_message =
      [&pings_reborn](const wcl::RemotePeer&, BytesView) { ++pings_reborn; };
  tb.run_for(3 * net::kMinute);
  for (WhisperNode* m : members) {
    auto* g = tb.node(m->id())->group(kGroup);  // resolves the live instance
    if (g != nullptr) g->send_app_to(leader_desc, to_bytes("ping"));
  }
  tb.run_for(3 * net::kMinute);
  out.pings_after_leader_restart = pings_reborn;
  out.post_leader_restart_delivery = pings_reborn >= 4;  // 5 senders, allow 1 straggler

  for (WhisperNode* n : tb.alive_nodes()) {
    for (const auto& e : n->pss().view().entries()) {
      out.overlay = out.overlay * 1099511628211ull + e.id().value;
      out.overlay = out.overlay * 1099511628211ull + e.age;
    }
    out.restarts_observed += n->transport().peer_restarts();
    out.stale_rejects += n->transport().stale_incarnation_rejects();
  }
  return out;
}

TEST(CrashRestart, MemberAndLeaderRecoverWithSameIdentity) {
  const RunResult r = run_once(4242);
  EXPECT_TRUE(r.all_joined);
  EXPECT_TRUE(r.member_restarted);
  EXPECT_EQ(r.member_incarnation, 2u);
  EXPECT_TRUE(r.member_rejoined);
  EXPECT_TRUE(r.member_redelivered);
  EXPECT_TRUE(r.leader_noticed_restart);
  EXPECT_TRUE(r.leader_resumed);
  EXPECT_TRUE(r.post_leader_restart_delivery);
  // Restarts propagate: multiple peers eventually observe each bump.
  EXPECT_GE(r.restarts_observed, 2u);
}

TEST(CrashRestart, SameSeedSameRecovery) {
  const RunResult a = run_once(9191);
  const RunResult b = run_once(9191);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a.member_rejoined);
  EXPECT_TRUE(a.leader_resumed);
}

TEST(CrashRestart, DifferentSeedsDiverge) {
  const RunResult a = run_once(9191);
  const RunResult b = run_once(9192);
  EXPECT_NE(a.overlay, b.overlay);
}

}  // namespace
}  // namespace whisper

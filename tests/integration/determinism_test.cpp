// Whole-stack determinism: identical seeds must produce bit-identical
// protocol evolution across every layer — the property that makes paper
// reproduction runs exactly repeatable.
#include <gtest/gtest.h>

#include "whisper/testbed.hpp"

namespace whisper {
namespace {

constexpr GroupId kGroup{50505};

struct RunDigest {
  std::uint64_t overlay = 0;
  std::uint64_t wcl = 0;
  std::uint64_t groups = 0;
  std::uint64_t traffic = 0;

  bool operator==(const RunDigest&) const = default;
};

RunDigest run_once(std::uint64_t seed) {
  TestbedConfig cfg;
  cfg.initial_nodes = 40;
  cfg.node.pss.pi_min_public = 3;
  cfg.node.wcl.pi = 3;
  cfg.node.ppss.cycle = 30 * net::kSecond;
  cfg.seed = seed;
  WhisperTestbed tb(cfg);
  tb.run_for(5 * net::kMinute);

  // Group activity on top.
  auto nodes = tb.alive_nodes();
  crypto::Drbg d(seed);
  auto& fg = nodes[0]->create_group(kGroup, crypto::RsaKeyPair::generate(512, d));
  for (int i = 1; i <= 6; ++i) {
    nodes[static_cast<std::size_t>(i)]->join_group(
        kGroup, *fg.invite(nodes[static_cast<std::size_t>(i)]->id()), fg.self_descriptor());
  }
  tb.run_for(8 * net::kMinute);

  RunDigest digest;
  for (WhisperNode* n : tb.alive_nodes()) {
    for (const auto& e : n->pss().view().entries()) {
      digest.overlay = digest.overlay * 1099511628211ull + e.id().value;
      digest.overlay = digest.overlay * 1099511628211ull + e.age;
    }
    digest.wcl = digest.wcl * 31 + n->wcl().stats().first_try_success;
    digest.wcl = digest.wcl * 31 + n->wcl().backlog().size();
    digest.traffic += tb.traffic(n->internal_endpoint()).total_up();
    if (auto* g = n->group(kGroup)) {
      digest.groups = digest.groups * 31 + (g->joined() ? 1u : 0u);
      digest.groups = digest.groups * 31 + g->private_view().size();
      digest.groups = digest.groups * 31 + g->stats().exchanges_completed;
    }
  }
  return digest;
}

TEST(Determinism, IdenticalSeedsIdenticalRuns) {
  const RunDigest a = run_once(777);
  const RunDigest b = run_once(777);
  EXPECT_EQ(a.overlay, b.overlay);
  EXPECT_EQ(a.wcl, b.wcl);
  EXPECT_EQ(a.groups, b.groups);
  EXPECT_EQ(a.traffic, b.traffic);
}

TEST(Determinism, DifferentSeedsDifferentRuns) {
  const RunDigest a = run_once(777);
  const RunDigest b = run_once(778);
  // At least the overlay evolution must differ (traffic could coincide in
  // principle, overlay state practically cannot).
  EXPECT_NE(a.overlay, b.overlay);
}

TEST(Determinism, DigestsStableAcrossRepetition) {
  // Three repetitions agree pairwise (catches hidden global state such as
  // static caches leaking across testbeds).
  const RunDigest a = run_once(999);
  const RunDigest b = run_once(999);
  const RunDigest c = run_once(999);
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
}

}  // namespace
}  // namespace whisper

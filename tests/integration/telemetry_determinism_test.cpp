// Golden determinism of the telemetry subsystem: two same-seed full-stack
// runs with tracing and time-series sampling enabled must export
// byte-identical JSONL and Chrome-trace documents, and enabling telemetry
// must not perturb the protocol evolution itself (same overlay digest as a
// telemetry-dark run would see — telemetry reads, it never schedules
// protocol events).
#include <gtest/gtest.h>

#include "telemetry/export.hpp"
#include "whisper/testbed.hpp"

namespace whisper {
namespace {

constexpr GroupId kGroup{61616};

struct RunOutput {
  std::string metrics_jsonl;
  std::string series_jsonl;
  std::string chrome_trace;
  std::uint64_t overlay_digest = 0;
};

RunOutput run_once(std::uint64_t seed, bool trace) {
  TestbedConfig cfg;
  cfg.initial_nodes = 30;
  cfg.node.pss.pi_min_public = 3;
  cfg.node.wcl.pi = 3;
  cfg.node.ppss.cycle = 30 * net::kSecond;
  cfg.seed = seed;
  cfg.trace = trace;
  cfg.telemetry_sample_every = trace ? net::kMinute : 0;
  WhisperTestbed tb(cfg);
  tb.run_for(4 * net::kMinute);

  auto nodes = tb.alive_nodes();
  crypto::Drbg d(seed);
  auto& fg = nodes[0]->create_group(kGroup, crypto::RsaKeyPair::generate(512, d));
  for (int i = 1; i <= 5; ++i) {
    nodes[static_cast<std::size_t>(i)]->join_group(
        kGroup, *fg.invite(nodes[static_cast<std::size_t>(i)]->id()), fg.self_descriptor());
  }
  tb.run_for(6 * net::kMinute);

  RunOutput out;
  out.metrics_jsonl = telemetry::to_jsonl(tb.registry());
  out.series_jsonl = telemetry::to_jsonl(tb.recorder());
  out.chrome_trace = telemetry::to_chrome_trace(tb.tracer());
  for (WhisperNode* n : tb.alive_nodes()) {
    for (const auto& e : n->pss().view().entries()) {
      out.overlay_digest = out.overlay_digest * 1099511628211ull + e.id().value;
      out.overlay_digest = out.overlay_digest * 1099511628211ull + e.age;
    }
  }
  return out;
}

TEST(TelemetryDeterminism, SameSeedExportsAreByteIdentical) {
  const RunOutput a = run_once(4242, /*trace=*/true);
  const RunOutput b = run_once(4242, /*trace=*/true);
  EXPECT_EQ(a.metrics_jsonl, b.metrics_jsonl);
  EXPECT_EQ(a.series_jsonl, b.series_jsonl);
  EXPECT_EQ(a.chrome_trace, b.chrome_trace);
  EXPECT_EQ(a.overlay_digest, b.overlay_digest);
  // The run actually produced telemetry (guards against a silently-dark run
  // passing the comparison vacuously).
  EXPECT_NE(a.metrics_jsonl.find("pss.exchanges.completed"), std::string::npos);
  EXPECT_NE(a.metrics_jsonl.find("net.node.bytes"), std::string::npos);
  EXPECT_NE(a.chrome_trace.find("pss.exchange"), std::string::npos);
  EXPECT_FALSE(a.series_jsonl.empty());
}

// Drop "sim.*" metric lines: the sampling timer legitimately adds simulator
// events (executed count, queue depth), but must not touch protocol state.
std::string without_sim_lines(const std::string& jsonl) {
  std::string out;
  std::size_t pos = 0;
  while (pos < jsonl.size()) {
    const std::size_t nl = jsonl.find('\n', pos);
    const std::string line = jsonl.substr(pos, nl - pos);
    if (line.find("\"name\":\"sim.") == std::string::npos) {
      out += line;
      out += '\n';
    }
    pos = (nl == std::string::npos) ? jsonl.size() : nl + 1;
  }
  return out;
}

TEST(TelemetryDeterminism, TracingDoesNotPerturbProtocolEvolution) {
  // Overlay state and every protocol-level metric must evolve identically
  // whether tracing/sampling is on or off: telemetry observes the schedule,
  // it never participates in it.
  const RunOutput dark = run_once(5151, /*trace=*/false);
  const RunOutput lit = run_once(5151, /*trace=*/true);
  EXPECT_EQ(dark.overlay_digest, lit.overlay_digest);
  EXPECT_EQ(without_sim_lines(dark.metrics_jsonl), without_sim_lines(lit.metrics_jsonl));
}

}  // namespace
}  // namespace whisper

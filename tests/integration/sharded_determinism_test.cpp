// Shard-count invariance of the parallel engine (the CI gate DESIGN.md §13
// promises): a same-seed ScaleTestbed run must export byte-identical merged
// telemetry and canonical flight JSONL whether it runs on 1, 2, or 8
// shards, and must execute exactly the same number of events. Includes
// deterministic churn between run windows, so the gate also covers the
// planner-rng spawn/kill paths.
#include <gtest/gtest.h>

#include <string>

#include "telemetry/flight.hpp"
#include "whisper/scale.hpp"

namespace whisper {
namespace {

struct RunOutput {
  std::string metrics_jsonl;
  std::string flight_jsonl;
  std::uint64_t executed = 0;
  std::uint64_t cross_shard = 0;
  std::size_t alive = 0;
};

RunOutput run_once(std::uint64_t seed, std::size_t shards) {
  ScaleConfig cfg;
  cfg.initial_nodes = 32;
  cfg.shards = shards;
  cfg.seed = seed;
  cfg.flight = true;
  cfg.node.pss.pi_min_public = 3;
  cfg.node.wcl.pi = 3;
  ScaleTestbed tb(cfg);

  tb.run_for(90 * net::kSecond);
  // Deterministic churn: same planner-rng draws for every shard count.
  tb.kill_random_node();
  tb.kill_random_node();
  tb.spawn_node();
  tb.run_for(90 * net::kSecond);

  RunOutput out;
  out.metrics_jsonl = tb.merged_metrics_jsonl();
  out.flight_jsonl = tb.canonical_flight_jsonl();
  out.executed = tb.executed_events();
  out.cross_shard = tb.cross_shard_messages();
  out.alive = tb.alive_count();
  return out;
}

TEST(ShardedDeterminism, OneShardIsRerunStable) {
  const RunOutput a = run_once(7001, 1);
  const RunOutput b = run_once(7001, 1);
  EXPECT_EQ(a.metrics_jsonl, b.metrics_jsonl);
  EXPECT_EQ(a.flight_jsonl, b.flight_jsonl);
  EXPECT_EQ(a.executed, b.executed);
}

TEST(ShardedDeterminism, ShardCountDoesNotChangeTheRun) {
  const RunOutput s1 = run_once(7002, 1);
  const RunOutput s2 = run_once(7002, 2);
  const RunOutput s8 = run_once(7002, 8);

  EXPECT_EQ(s1.alive, s2.alive);
  EXPECT_EQ(s1.alive, s8.alive);
  EXPECT_EQ(s1.executed, s2.executed);
  EXPECT_EQ(s1.executed, s8.executed);

  // Byte-identity, plus the digest the CI gate logs.
  EXPECT_EQ(s1.metrics_jsonl, s2.metrics_jsonl);
  EXPECT_EQ(s1.metrics_jsonl, s8.metrics_jsonl);
  EXPECT_EQ(telemetry::flight_digest(s1.flight_jsonl),
            telemetry::flight_digest(s2.flight_jsonl));
  EXPECT_EQ(s1.flight_jsonl, s2.flight_jsonl);
  EXPECT_EQ(s1.flight_jsonl, s8.flight_jsonl);

  // The gate is only meaningful if the run did real work and traffic
  // actually crossed shards (the 3-minute 32-node scenario executes ~4.3k
  // events; a floor well below that still catches a gutted run).
  EXPECT_GT(s1.executed, 3000u);
  EXPECT_EQ(s1.cross_shard, 0u);
  EXPECT_GT(s2.cross_shard, 1000u);
  EXPECT_GT(s8.cross_shard, 1000u);
}

TEST(ShardedDeterminism, SeedChangesTheRun) {
  const RunOutput a = run_once(7003, 2);
  const RunOutput b = run_once(7004, 2);
  EXPECT_NE(a.metrics_jsonl, b.metrics_jsonl);
}

}  // namespace
}  // namespace whisper

#include "wcl/backlog.hpp"

#include <gtest/gtest.h>

namespace whisper::wcl {
namespace {

CbEntry entry(std::uint64_t id, bool is_public) {
  CbEntry e;
  e.card.id = NodeId{id};
  e.card.is_public = is_public;
  return e;
}

TEST(Backlog, PushAndFind) {
  ConnectionBacklog cb(4);
  cb.push(entry(1, true));
  EXPECT_TRUE(cb.contains(NodeId{1}));
  EXPECT_EQ(cb.size(), 1u);
  ASSERT_NE(cb.find(NodeId{1}), nullptr);
}

TEST(Backlog, FifoEvictionAtCapacity) {
  ConnectionBacklog cb(3);
  for (std::uint64_t i = 1; i <= 5; ++i) cb.push(entry(i, false));
  EXPECT_EQ(cb.size(), 3u);
  EXPECT_FALSE(cb.contains(NodeId{1}));
  EXPECT_FALSE(cb.contains(NodeId{2}));
  EXPECT_TRUE(cb.contains(NodeId{3}));
  EXPECT_TRUE(cb.contains(NodeId{5}));
}

TEST(Backlog, HeadIsFreshest) {
  ConnectionBacklog cb(3);
  cb.push(entry(1, false));
  cb.push(entry(2, false));
  EXPECT_EQ(cb.entries().front().card.id, NodeId{2});
  EXPECT_EQ(cb.entries().back().card.id, NodeId{1});
}

TEST(Backlog, RepushMovesToHead) {
  ConnectionBacklog cb(3);
  cb.push(entry(1, false));
  cb.push(entry(2, false));
  cb.push(entry(1, false));  // refresh
  EXPECT_EQ(cb.size(), 2u);
  EXPECT_EQ(cb.entries().front().card.id, NodeId{1});
}

TEST(Backlog, RepushProtectsFromEviction) {
  ConnectionBacklog cb(2);
  cb.push(entry(1, false));
  cb.push(entry(2, false));
  cb.push(entry(1, false));  // 1 is now freshest
  cb.push(entry(3, false));  // evicts 2, not 1
  EXPECT_TRUE(cb.contains(NodeId{1}));
  EXPECT_FALSE(cb.contains(NodeId{2}));
}

TEST(Backlog, CountPublicAndPublics) {
  ConnectionBacklog cb(5);
  cb.push(entry(1, true));
  cb.push(entry(2, false));
  cb.push(entry(3, true));
  EXPECT_EQ(cb.count_public(), 2u);
  auto pubs = cb.publics();
  ASSERT_EQ(pubs.size(), 2u);
  EXPECT_EQ(pubs[0]->card.id, NodeId{3});  // freshest first
  EXPECT_EQ(pubs[1]->card.id, NodeId{1});
}

TEST(Backlog, RemoveErases) {
  ConnectionBacklog cb(5);
  cb.push(entry(1, true));
  cb.remove(NodeId{1});
  EXPECT_TRUE(cb.empty());
}

}  // namespace
}  // namespace whisper::wcl

#include "wcl/rtt.hpp"

#include <gtest/gtest.h>

namespace whisper::wcl {
namespace {

constexpr net::Time kInitial = 5 * net::kSecond;
constexpr net::Time kMin = 200 * net::kMillisecond;
constexpr net::Time kMax = 30 * net::kSecond;

TEST(RttEstimator, NoSampleReturnsInitialRto) {
  RttEstimator est;
  EXPECT_FALSE(est.has_sample());
  EXPECT_EQ(est.rto(kInitial, kMin, kMax), kInitial);
}

TEST(RttEstimator, FirstSampleSeedsSrttAndVar) {
  RttEstimator est;
  est.sample(80 * net::kMillisecond);
  EXPECT_EQ(est.srtt(), 80 * net::kMillisecond);
  EXPECT_EQ(est.rttvar(), 40 * net::kMillisecond);
  // RTO = srtt + 4*rttvar = 240 ms.
  EXPECT_EQ(est.rto(kInitial, kMin, kMax), 240 * net::kMillisecond);
}

TEST(RttEstimator, ConvergesToStableRtt) {
  RttEstimator est;
  for (int i = 0; i < 50; ++i) est.sample(100 * net::kMillisecond);
  EXPECT_NEAR(static_cast<double>(est.srtt()), 100.0 * net::kMillisecond,
              1.0 * net::kMillisecond);
  // Variance decays towards zero on a steady path; RTO approaches SRTT
  // (plus the RFC 6298 granularity floor) and the min clamp keeps it sane.
  EXPECT_LT(est.rttvar(), 5 * net::kMillisecond);
  EXPECT_LT(est.rto(kInitial, kMin, kMax), 150 * net::kMillisecond + kMin);
}

TEST(RttEstimator, SpikesInflateRtoThenDecay) {
  RttEstimator est;
  for (int i = 0; i < 20; ++i) est.sample(50 * net::kMillisecond);
  const net::Time calm = est.rto(kInitial, kMin, kMax);
  est.sample(1 * net::kSecond);  // delay spike
  const net::Time spiked = est.rto(kInitial, kMin, kMax);
  EXPECT_GT(spiked, calm);
  for (int i = 0; i < 40; ++i) est.sample(50 * net::kMillisecond);
  EXPECT_LT(est.rto(kInitial, kMin, kMax), spiked / 2);
}

TEST(RttEstimator, RtoClampedToBounds) {
  RttEstimator fast;
  fast.sample(10);  // 10 us path: raw RTO would be 30 us
  EXPECT_EQ(fast.rto(kInitial, kMin, kMax), kMin);

  RttEstimator slow;
  slow.sample(100 * net::kSecond);
  EXPECT_EQ(slow.rto(kInitial, kMin, kMax), kMax);
}

}  // namespace
}  // namespace whisper::wcl

#include "wcl/wcl.hpp"

#include <gtest/gtest.h>

#include "whisper/testbed.hpp"

namespace whisper::wcl {
namespace {

TestbedConfig config(std::size_t n, std::uint64_t seed = 31) {
  TestbedConfig cfg;
  cfg.initial_nodes = n;
  cfg.node.pss.pi_min_public = 3;
  cfg.node.wcl.pi = 3;
  cfg.seed = seed;
  return cfg;
}

// Shared warmed-up testbed: WCL tests need a converged PSS + filled CBs,
// which takes a few simulated minutes to establish.
struct WclFixture : ::testing::Test {
  static WhisperTestbed& testbed() {
    static auto* tb = [] {
      auto* t = new WhisperTestbed(config(40));
      t->run_for(6 * net::kMinute);
      return t;
    }();
    return *tb;
  }
};

TEST_F(WclFixture, BacklogsFillFromGossip) {
  std::size_t with_entries = 0;
  for (WhisperNode* n : testbed().alive_nodes()) {
    if (n->wcl().backlog().size() >= 3) ++with_entries;
  }
  EXPECT_GT(with_entries, testbed().alive_count() * 9 / 10);
}

TEST_F(WclFixture, PiPublicInvariantHolds) {
  std::size_t satisfied = 0;
  for (WhisperNode* n : testbed().alive_nodes()) {
    if (n->wcl().backlog().count_public() >= 3) ++satisfied;
  }
  EXPECT_GT(satisfied, testbed().alive_count() * 8 / 10);
}

TEST_F(WclFixture, OwnHelpersAreFreshPublicEntries) {
  WhisperNode* n = testbed().alive_nodes()[0];
  auto helpers = n->wcl().own_helpers();
  EXPECT_LE(helpers.size(), 3u);
  for (const auto& h : helpers) {
    EXPECT_TRUE(h.card.is_public);
  }
}

TEST_F(WclFixture, ConfidentialSendDelivers) {
  auto nodes = testbed().alive_nodes();
  WhisperNode* src = nodes[1];
  WhisperNode* dst = nodes[2];

  Bytes delivered;
  dst->wcl().on_deliver = [&](Bytes p) { delivered = std::move(p); };

  const Bytes secret = to_bytes("whisper quietly");
  std::optional<SendOutcome> outcome;
  EXPECT_TRUE(src->wcl().send_confidential(dst->wcl().self_peer(), secret,
                                           [&](SendOutcome o) { outcome = o; }));
  testbed().run_for(30 * net::kSecond);
  EXPECT_EQ(delivered, secret);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_NE(*outcome, SendOutcome::kNoAlternative);
  dst->wcl().on_deliver = nullptr;
}

TEST_F(WclFixture, DeliveryToNattedDestination) {
  auto nodes = testbed().alive_nodes();
  WhisperNode* src = nullptr;
  WhisperNode* dst = nullptr;
  for (WhisperNode* n : nodes) {
    if (!n->is_public() && dst == nullptr) {
      dst = n;
    } else if (src == nullptr && n != dst) {
      src = n;
    }
  }
  ASSERT_NE(src, nullptr);
  ASSERT_NE(dst, nullptr);
  ASSERT_FALSE(dst->wcl().self_peer().helpers.empty()) << "natted dest needs helpers";

  Bytes delivered;
  dst->wcl().on_deliver = [&](Bytes p) { delivered = std::move(p); };
  EXPECT_TRUE(src->wcl().send_confidential(dst->wcl().self_peer(), to_bytes("to natted")));
  testbed().run_for(30 * net::kSecond);
  EXPECT_EQ(delivered, to_bytes("to natted"));
  dst->wcl().on_deliver = nullptr;
}

TEST_F(WclFixture, MixesNeverSeePlaintext) {
  // Run a send and verify the payload bytes never appear in any datagram
  // (the network counts bytes; we check via a tap handler on all nodes is
  // overkill — instead verify the body is AES-encrypted by checking that
  // intermediate forwarding stats increased while delivery happened once).
  auto nodes = testbed().alive_nodes();
  WhisperNode* src = nodes[4];
  WhisperNode* dst = nodes[5];
  std::uint64_t forwarded_before = 0;
  for (WhisperNode* n : nodes) forwarded_before += n->wcl().stats().onions_forwarded;

  int deliveries = 0;
  dst->wcl().on_deliver = [&](Bytes) { ++deliveries; };
  src->wcl().send_confidential(dst->wcl().self_peer(), to_bytes("x"));
  testbed().run_for(30 * net::kSecond);

  std::uint64_t forwarded_after = 0;
  for (WhisperNode* n : nodes) forwarded_after += n->wcl().stats().onions_forwarded;
  EXPECT_EQ(deliveries, 1);
  // Exactly two mixes forwarded (possibly plus retries).
  EXPECT_GE(forwarded_after - forwarded_before, 2u);
  dst->wcl().on_deliver = nullptr;
}

TEST_F(WclFixture, SendToSelfRejected) {
  WhisperNode* n = testbed().alive_nodes()[0];
  EXPECT_FALSE(n->wcl().send_confidential(n->wcl().self_peer(), to_bytes("loop")));
}

TEST_F(WclFixture, SendFailsWithoutHelpersForNattedDest) {
  auto nodes = testbed().alive_nodes();
  WhisperNode* src = nodes[1];
  // Fabricate a natted destination descriptor with no helpers.
  RemotePeer bogus;
  bogus.card.id = NodeId{999999};
  bogus.card.is_public = false;
  bogus.key = src->keypair().pub;
  std::optional<SendOutcome> outcome;
  EXPECT_FALSE(
      src->wcl().send_confidential(bogus, to_bytes("x"), [&](SendOutcome o) { outcome = o; }));
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(*outcome, SendOutcome::kNoAlternative);
}

TEST_F(WclFixture, RetryFindsAlternativeWhenHelperDead) {
  auto nodes = testbed().alive_nodes();
  WhisperNode* src = nodes[6];
  WhisperNode* dst = nodes[7];
  RemotePeer peer = dst->wcl().self_peer();
  // Poison the helper list: first helper entries point to a dead node, the
  // last one is real, so the first attempt(s) NACK/time out and a retry
  // succeeds.
  ASSERT_FALSE(peer.helpers.empty());
  Helper real = peer.helpers.back();
  Helper dead = real;
  dead.card.id = NodeId{888888};
  dead.card.addr = Endpoint{0x7f000001, 1};
  peer.helpers = {dead, real};

  int deliveries = 0;
  dst->wcl().on_deliver = [&](Bytes) { ++deliveries; };
  std::optional<SendOutcome> outcome;
  src->wcl().send_confidential(peer, to_bytes("retry me"),
                               [&](SendOutcome o) { outcome = o; });
  testbed().run_for(60 * net::kSecond);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_NE(*outcome, SendOutcome::kNoAlternative);
  EXPECT_EQ(deliveries, 1);
  dst->wcl().on_deliver = nullptr;
}

TEST(WclAuthenticated, EndToEndWithAuthenticatedBodies) {
  TestbedConfig cfg = config(30, /*seed=*/350);
  cfg.node.wcl.authenticated_bodies = true;
  WhisperTestbed tb(cfg);
  tb.run_for(6 * net::kMinute);
  auto nodes = tb.alive_nodes();
  WhisperNode* src = nodes[1];
  WhisperNode* dst = nodes[2];
  Bytes delivered;
  dst->wcl().on_deliver = [&](Bytes p) { delivered = std::move(p); };
  std::optional<SendOutcome> outcome;
  ASSERT_TRUE(src->wcl().send_confidential(dst->wcl().self_peer(),
                                           to_bytes("integrity-protected"),
                                           [&](SendOutcome o) { outcome = o; }));
  tb.run_for(30 * net::kSecond);
  EXPECT_EQ(delivered, to_bytes("integrity-protected"));
  ASSERT_TRUE(outcome.has_value());
  EXPECT_NE(*outcome, SendOutcome::kNoAlternative);
  EXPECT_EQ(dst->wcl().stats().bodies_rejected, 0u);
}

TEST(WclAuthenticated, ModesInteroperateAcrossMixes) {
  // Only source and destination interpret the body: mixes forward both
  // modes identically, so mixed-mode deployments work.
  TestbedConfig cfg = config(30, /*seed=*/351);
  cfg.node.wcl.authenticated_bodies = false;  // mixes run plain mode
  WhisperTestbed tb(cfg);
  tb.run_for(6 * net::kMinute);
  auto nodes = tb.alive_nodes();
  // A plain-mode sender to a plain-mode receiver through whatever mixes:
  // mode byte 0 round-trips (covered elsewhere); here assert an overall
  // mixed population keeps statistics clean.
  WhisperNode* src = nodes[3];
  WhisperNode* dst = nodes[4];
  int deliveries = 0;
  dst->wcl().on_deliver = [&](Bytes) { ++deliveries; };
  src->wcl().send_confidential(dst->wcl().self_peer(), to_bytes("plain"));
  tb.run_for(30 * net::kSecond);
  EXPECT_EQ(deliveries, 1);
  for (WhisperNode* n : nodes) EXPECT_EQ(n->wcl().stats().bodies_rejected, 0u);
}

// Path-length variants (f mixes tolerate f-1 colluders, paper footnote 2).
class WclPathLength : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WclPathLength, DeliversWithConfiguredMixCount) {
  TestbedConfig cfg = config(30, /*seed=*/300 + GetParam());
  cfg.node.wcl.mixes = GetParam();
  WhisperTestbed tb(cfg);
  tb.run_for(6 * net::kMinute);

  auto nodes = tb.alive_nodes();
  WhisperNode* src = nodes[1];
  WhisperNode* dst = nodes[2];
  Bytes delivered;
  dst->wcl().on_deliver = [&](Bytes p) { delivered = std::move(p); };

  std::uint64_t forwarded_before = 0;
  for (WhisperNode* n : nodes) forwarded_before += n->wcl().stats().onions_forwarded;

  const Bytes secret = to_bytes("variable path length");
  ASSERT_TRUE(src->wcl().send_confidential(dst->wcl().self_peer(), secret));
  tb.run_for(30 * net::kSecond);
  EXPECT_EQ(delivered, secret);

  // Exactly `mixes` forwarding steps per successful attempt (at least).
  std::uint64_t forwarded_after = 0;
  for (WhisperNode* n : nodes) forwarded_after += n->wcl().stats().onions_forwarded;
  EXPECT_GE(forwarded_after - forwarded_before, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Mixes, WclPathLength, ::testing::Values(1u, 2u, 3u, 4u));

TEST(RemotePeerWire, SerializeRoundTrip) {
  crypto::Drbg d(1);
  auto kp = crypto::RsaKeyPair::generate(512, d);
  RemotePeer peer;
  peer.card.id = NodeId{5};
  peer.card.is_public = false;
  peer.card.addr = Endpoint{1, 2};
  peer.card.relay_id = NodeId{9};
  peer.key = kp.pub;
  Helper h;
  h.card.id = NodeId{7};
  h.card.is_public = true;
  h.key = kp.pub;
  peer.helpers = {h, h};

  Writer w;
  peer.serialize(w);
  Reader r(w.data());
  auto back = RemotePeer::deserialize(r);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->card, peer.card);
  EXPECT_EQ(back->key, peer.key);
  ASSERT_EQ(back->helpers.size(), 2u);
  EXPECT_EQ(back->helpers[0].card, h.card);
}

TEST(RemotePeerWire, DeserializeGarbageFails) {
  Reader r(Bytes{1, 2, 3});
  EXPECT_FALSE(RemotePeer::deserialize(r).has_value());
}

TEST(WclAdaptive, SuccessfulSendsSeedTheRttEstimator) {
  TestbedConfig cfg = config(30, /*seed=*/360);
  WhisperTestbed tb(cfg);
  tb.run_for(6 * net::kMinute);
  auto nodes = tb.alive_nodes();
  WhisperNode* src = nodes[1];
  WhisperNode* dst = nodes[2];

  // No samples yet: the retransmit timer falls back to the conservative
  // configured ack_timeout.
  EXPECT_FALSE(src->wcl().rtt_of(dst->id()).has_sample());
  EXPECT_EQ(src->wcl().current_rto(dst->id()), cfg.node.wcl.ack_timeout);

  int deliveries = 0;
  dst->wcl().on_deliver = [&](Bytes) { ++deliveries; };
  src->wcl().send_confidential(dst->wcl().self_peer(), to_bytes("time me"));
  tb.run_for(30 * net::kSecond);
  ASSERT_EQ(deliveries, 1);

  // The ack round-trip produced a sample; the adaptive RTO is now far
  // below the 5 s fixed timeout (cluster paths are millisecond-scale).
  ASSERT_TRUE(src->wcl().rtt_of(dst->id()).has_sample());
  EXPECT_LT(src->wcl().current_rto(dst->id()), cfg.node.wcl.ack_timeout);
  EXPECT_GE(src->wcl().current_rto(dst->id()), cfg.node.wcl.min_rto);
}

TEST(WclSweep, ExpiredPendingForwardsAreSwept) {
  TestbedConfig cfg = config(30, /*seed=*/361);
  WhisperTestbed tb(cfg);
  tb.run_for(6 * net::kMinute);
  auto nodes = tb.alive_nodes();
  WhisperNode* src = nodes[1];
  WhisperNode* dst = nodes[2];

  // Capture the destination descriptor, then kill the destination: mixes
  // that forward the onion will never see an ack come back, leaving
  // pending-forward state behind on every hop.
  RemotePeer stale = dst->wcl().self_peer();
  tb.kill_node(dst->id());
  src->wcl().send_confidential(stale, to_bytes("to the void"));
  tb.run_for(30 * net::kSecond);

  std::size_t lingering = 0;
  for (WhisperNode* n : tb.alive_nodes()) {
    lingering += n->wcl().pending_forward_count();
  }
  ASSERT_GT(lingering, 0u) << "dead-destination send left no mix state";

  // Past pending_forward_ttl (+ one sweep interval), the periodic sweep
  // reclaims the state and counts each expiry.
  tb.run_for(cfg.node.wcl.pending_forward_ttl + 2 * cfg.node.wcl.sweep_interval);
  std::size_t after = 0;
  std::uint64_t expired = 0;
  for (WhisperNode* n : tb.alive_nodes()) {
    after += n->wcl().pending_forward_count();
    expired += n->wcl().stats().forwards_expired;
  }
  EXPECT_EQ(after, 0u);
  EXPECT_GE(expired, lingering);
}

}  // namespace
}  // namespace whisper::wcl

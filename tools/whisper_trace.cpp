// whisper_trace — offline analysis of flight-record dumps.
//
// Operates on the JSONL emitted by `whisper_sim --flight=out.jsonl` (or any
// FlightRecorder export):
//
//   whisper_trace summary out.jsonl [more.jsonl ...]
//       Outcome counts, per-hop latency decomposition totals, digest.
//       Multiple inputs merge by trace id with canonical renumbering
//       (the sharded-engine merge rules). Raw-event exports
//       (*.events.jsonl, auto-detected by their "kind" key) merge at the
//       event level first — the cross-process path: each whisper_noded
//       under --trace-wire logs its own half of every flight, and the
//       merged assembly rebuilds full per-hop decompositions.
//   whisper_trace show <trace_id> out.jsonl [more.jsonl ...]
//       Full per-hop breakdown of one message (trace ids as renumbered
//       by the merge when multiple inputs are given).
//   whisper_trace audit out.jsonl [--observe-relays=3,5] [--observe-links=1-2,4-7]
//                       [--observe-taps=9] [--global] [--nodes=N] [--verbose]
//       Adversary's-view anonymity audit: anonymity-set sizes, per-relay
//       sender/receiver unlinkability, group-membership leakage.
//   whisper_trace faults out.jsonl [--fault=kind]
//       Messages the fault fabric touched, filterable by fault kind.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/audit.hpp"
#include "telemetry/flight.hpp"

using namespace whisper;

namespace {

std::string arg_string(int argc, char** argv, const std::string& key,
                       const std::string& fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
  }
  return fallback;
}

bool arg_flag(int argc, char** argv, const std::string& key) {
  const std::string flag = "--" + key;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

// First non-option argument after `skip` positionals (argv[0] + command...).
std::string positional(int argc, char** argv, int index) {
  int seen = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) == 0) continue;
    if (seen == index) return a;
    ++seen;
  }
  return {};
}

// Every non-option argument from `index` on.
std::vector<std::string> positionals_from(int argc, char** argv, int index) {
  std::vector<std::string> out;
  int seen = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) == 0) continue;
    if (seen >= index) out.push_back(a);
    ++seen;
  }
  return out;
}

bool slurp(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

/// Raw-event exports carry a "kind" key on every line; record exports
/// never do. Peek at the first non-empty line.
bool looks_like_events(const std::string& text) {
  const std::size_t eol = text.find('\n');
  const std::string first = text.substr(0, eol == std::string::npos ? text.size() : eol);
  return first.find("\"kind\"") != std::string::npos;
}

bool load_records(const std::string& path, std::vector<telemetry::FlightRecord>* out) {
  std::string text;
  if (!slurp(path, &text)) return false;
  std::string err;
  if (!telemetry::parse_flight_jsonl(text, out, &err)) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), err.c_str());
    return false;
  }
  return true;
}

/// Load any mix of record and raw-event exports. Events from all event
/// files merge into one stream and assemble canonically (cross-process
/// halves pair up); with more than one input the records also pass through
/// canonical renumbering so trace ids are ordinals of content order —
/// identical to the sharded engine's merge rules. `text_out` (non-null)
/// receives the canonical JSONL of the merged set, for digesting.
bool load_merged(const std::vector<std::string>& paths,
                 std::vector<telemetry::FlightRecord>* out,
                 std::string* text_out) {
  std::vector<telemetry::FlightRecord> records;
  std::vector<telemetry::FlightEventRec> events;
  bool any_events = false;
  for (const std::string& path : paths) {
    std::string text;
    if (!slurp(path, &text)) return false;
    std::string err;
    if (looks_like_events(text)) {
      std::vector<telemetry::FlightEventRec> chunk;
      if (!telemetry::parse_flight_events_jsonl(text, &chunk, &err)) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(), err.c_str());
        return false;
      }
      events.insert(events.end(), std::make_move_iterator(chunk.begin()),
                    std::make_move_iterator(chunk.end()));
      any_events = true;
    } else {
      std::vector<telemetry::FlightRecord> chunk;
      if (!telemetry::parse_flight_jsonl(text, &chunk, &err)) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(), err.c_str());
        return false;
      }
      records.insert(records.end(), std::make_move_iterator(chunk.begin()),
                     std::make_move_iterator(chunk.end()));
    }
  }
  if (any_events) {
    auto assembled = telemetry::canonical_flight_records(std::move(events));
    records.insert(records.end(), std::make_move_iterator(assembled.begin()),
                   std::make_move_iterator(assembled.end()));
    if (!records.empty() && records.size() != assembled.size()) {
      // Mixed record + event inputs: renumber the union too.
      records = telemetry::canonicalize_flight_records(std::move(records));
    }
  } else if (paths.size() > 1) {
    records = telemetry::canonicalize_flight_records(std::move(records));
  }
  *out = std::move(records);
  if (text_out != nullptr) *text_out = telemetry::to_jsonl(*out);
  return true;
}

int cmd_summary(const std::vector<std::string>& paths) {
  std::vector<telemetry::FlightRecord> recs;
  std::string canonical_text;
  if (!load_merged(paths, &recs, &canonical_text)) return 1;

  std::map<std::string, std::size_t> outcomes;
  std::map<std::string, std::size_t> layers;
  std::uint64_t rtt = 0, crypto = 0, prop = 0, queue = 0, retry = 0, proc = 0;
  std::size_t delivered = 0, karn = 0, faulted = 0, exact = 0;
  for (const auto& r : recs) {
    outcomes[r.outcome.empty() ? "(unresolved)" : r.outcome]++;
    layers[telemetry::trace_layer_name(r.layer)]++;
    if (r.karn_ambiguous) ++karn;
    if (!r.faults.empty()) ++faulted;
    if (r.outcome == "delivered") {
      ++delivered;
      rtt += r.rtt_us;
      crypto += r.crypto_us;
      prop += r.prop_us;
      queue += r.queue_us;
      retry += r.retry_us;
      proc += r.proc_us;
      if (r.rtt_us > 0 && r.decomposed_us() == r.rtt_us) ++exact;
    }
  }
  std::printf("%zu records (digest %016llx)\n", recs.size(),
              static_cast<unsigned long long>(telemetry::flight_digest(canonical_text)));
  std::printf("layers:");
  for (const auto& [l, n] : layers) std::printf(" %s=%zu", l.c_str(), n);
  std::printf("\noutcomes:");
  for (const auto& [o, n] : outcomes) std::printf(" %s=%zu", o.c_str(), n);
  std::printf("\nkarn-ambiguous=%zu fault-touched=%zu\n", karn, faulted);
  if (delivered > 0) {
    const double d = static_cast<double>(delivered);
    std::printf("delivered mean decomposition (us): rtt=%.0f = crypto %.0f + prop %.0f "
                "+ queue %.0f + retry %.0f + proc %.0f\n",
                static_cast<double>(rtt) / d, static_cast<double>(crypto) / d,
                static_cast<double>(prop) / d, static_cast<double>(queue) / d,
                static_cast<double>(retry) / d, static_cast<double>(proc) / d);
    std::printf("decomposition sums exactly to rtt on %zu/%zu delivered\n",
                exact, delivered);
  }
  return 0;
}

int cmd_show(std::uint64_t trace_id, const std::vector<std::string>& paths) {
  std::vector<telemetry::FlightRecord> recs;
  if (!load_merged(paths, &recs, nullptr)) return 1;
  for (const auto& r : recs) {
    if (r.trace_id != trace_id) continue;
    std::printf("trace %llu (%s) root=%llu %llu -> %llu\n",
                static_cast<unsigned long long>(r.trace_id),
                telemetry::trace_layer_name(r.layer),
                static_cast<unsigned long long>(r.root),
                static_cast<unsigned long long>(r.src),
                static_cast<unsigned long long>(r.dst));
    std::printf("  outcome=%s attempts=%u karn=%s rtt=%lluus (crypto %llu + prop %llu + "
                "queue %llu + retry %llu + proc %llu)\n",
                r.outcome.c_str(), r.attempts, r.karn_ambiguous ? "yes" : "no",
                static_cast<unsigned long long>(r.rtt_us),
                static_cast<unsigned long long>(r.crypto_us),
                static_cast<unsigned long long>(r.prop_us),
                static_cast<unsigned long long>(r.queue_us),
                static_cast<unsigned long long>(r.retry_us),
                static_cast<unsigned long long>(r.proc_us));
    if (!r.group.empty()) std::printf("  group=%s\n", r.group.c_str());
    for (const std::string& f : r.faults) std::printf("  fault: %s\n", f.c_str());
    for (const auto& h : r.hops) {
      std::printf("  attempt %u hop %u: %llu -> %llu sent=%llu recv=%llu prop=%lluus "
                  "queue=%lluus status=%s%s%s\n",
                  h.attempt, h.hop, static_cast<unsigned long long>(h.from),
                  static_cast<unsigned long long>(h.to),
                  static_cast<unsigned long long>(h.sent_ts),
                  static_cast<unsigned long long>(h.recv_ts),
                  static_cast<unsigned long long>(h.prop_us),
                  static_cast<unsigned long long>(h.queue_us), h.status.c_str(),
                  h.fault.empty() ? "" : " fault=", h.fault.c_str());
    }
    return 0;
  }
  std::fprintf(stderr, "trace %llu not found (%zu input file(s))\n",
               static_cast<unsigned long long>(trace_id), paths.size());
  return 1;
}

int cmd_audit(int argc, char** argv, const std::string& path) {
  std::vector<telemetry::FlightRecord> recs;
  if (!load_records(path, &recs)) return 1;

  // Assemble the vantage spec from the --observe-* convenience flags.
  std::string spec;
  auto add = [&](const char* key, const std::string& val) {
    if (val.empty()) return;
    if (!spec.empty()) spec += ';';
    spec += key;
    spec += '=';
    spec += val;
  };
  add("relays", arg_string(argc, argv, "observe-relays", ""));
  add("links", arg_string(argc, argv, "observe-links", ""));
  add("taps", arg_string(argc, argv, "observe-taps", ""));
  if (arg_flag(argc, argv, "global")) spec = spec.empty() ? "global" : spec + ";global";

  telemetry::Vantage vantage;
  std::string err;
  if (!telemetry::Vantage::parse(spec, &vantage, &err)) {
    std::fprintf(stderr, "bad vantage: %s\n", err.c_str());
    return 1;
  }
  if (vantage.empty()) {
    std::fprintf(stderr, "audit: give the attacker something to see "
                         "(--observe-relays/--observe-links/--observe-taps/--global)\n");
    return 1;
  }
  const std::size_t nodes =
      static_cast<std::size_t>(std::strtoull(arg_string(argc, argv, "nodes", "0").c_str(),
                                             nullptr, 10));
  const telemetry::AuditReport report = telemetry::audit(recs, vantage, nodes);
  std::printf("vantage %s:\n%s", vantage.str().c_str(),
              telemetry::format_report(report, arg_flag(argc, argv, "verbose")).c_str());
  return report.linkable_count > 0 ? 2 : 0;  // distinct exit for leakage gates
}

int cmd_faults(int argc, char** argv, const std::string& path) {
  std::vector<telemetry::FlightRecord> recs;
  if (!load_records(path, &recs)) return 1;
  const std::string want = arg_string(argc, argv, "fault", "");
  std::size_t shown = 0;
  for (const auto& r : recs) {
    if (r.faults.empty()) continue;
    if (!want.empty() &&
        std::find(r.faults.begin(), r.faults.end(), want) == r.faults.end()) {
      continue;
    }
    std::string kinds;
    for (const auto& f : r.faults) {
      if (!kinds.empty()) kinds += ',';
      kinds += f;
    }
    std::printf("trace %-10llu %-10s %llu -> %llu attempts=%u outcome=%-10s faults=%s\n",
                static_cast<unsigned long long>(r.trace_id),
                telemetry::trace_layer_name(r.layer),
                static_cast<unsigned long long>(r.src),
                static_cast<unsigned long long>(r.dst), r.attempts,
                r.outcome.empty() ? "(unresolved)" : r.outcome.c_str(), kinds.c_str());
    ++shown;
  }
  std::printf("%zu fault-touched record(s)%s%s\n", shown, want.empty() ? "" : " matching ",
              want.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string cmd = positional(argc, argv, 0);
  if (cmd == "summary") {
    const std::vector<std::string> paths = positionals_from(argc, argv, 1);
    if (!paths.empty()) return cmd_summary(paths);
  } else if (cmd == "show") {
    const std::string id = positional(argc, argv, 1);
    const std::vector<std::string> paths = positionals_from(argc, argv, 2);
    if (!id.empty() && !paths.empty()) {
      return cmd_show(std::strtoull(id.c_str(), nullptr, 10), paths);
    }
  } else if (cmd == "audit") {
    const std::string path = positional(argc, argv, 1);
    if (!path.empty()) return cmd_audit(argc, argv, path);
  } else if (cmd == "faults") {
    const std::string path = positional(argc, argv, 1);
    if (!path.empty()) return cmd_faults(argc, argv, path);
  }
  std::fprintf(stderr,
               "usage: whisper_trace summary <flight.jsonl> [more.jsonl ...]\n"
               "       whisper_trace show <trace_id> <flight.jsonl> [more.jsonl ...]\n"
               "       whisper_trace audit <flight.jsonl> [--observe-relays=a,b]\n"
               "                     [--observe-links=a-b,...] [--observe-taps=a,b]\n"
               "                     [--global] [--nodes=N] [--verbose]\n"
               "       whisper_trace faults <flight.jsonl> [--fault=kind]\n");
  return 1;
}

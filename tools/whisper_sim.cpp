// whisper_sim — scenario runner for the full stack.
//
// Boots a deployment, optionally sets up private groups and churn, and
// prints per-minute health plus a final summary. The knobs mirror the
// paper's experimental parameters.
//
//   whisper_sim --nodes=300 --natted=0.7 --latency=cluster --pi=3
//               --groups=10 --churn=1.0 --minutes=30 [--seed=42]
//               [--trace=out.trace.json] [--metrics=out.jsonl]
//               [--sample-secs=60] [--faults=script.txt]
//               [--byzantine=0.1]
//               [--flight=out.flight.jsonl] [--audit=relays=3;links=1-2]
//
// --faults loads a fault-injection script (see src/faults/script.hpp for
// the line format: partitions, loss/delay episodes, relay crashes, NAT
// resets, node pauses, Byzantine actor windows). Times in the script are
// relative to the end of the warm-up, i.e. to the start of the observation
// window.
//
// --byzantine=<fraction> is a shortcut for a standing adversary: that
// fraction of the deployment misbehaves for the whole observation window,
// split evenly across truncation, oversizing, bit-flipping, replay,
// flooding and gossip fabrication.
//
// --trace dumps a Chrome trace-event file (load in Perfetto / about:tracing;
// one timeline row per node, timestamps are virtual microseconds).
// --metrics dumps the final metric registry as JSONL; with --sample-secs
// the per-interval time series of every metric is appended too.
//
// --flight records per-message causal flight records (per-hop latency
// decomposition, retries, fault attribution) and dumps them as JSONL —
// feed the file to whisper_trace. --audit additionally runs the
// adversary's-view anonymity audit at the given vantage before exiting
// (implies flight recording even without --flight).
#include <cstdio>
#include <string>

#include "churn/churn.hpp"
#include "faults/script.hpp"
#include "pss/metrics.hpp"
#include "telemetry/audit.hpp"
#include "telemetry/export.hpp"
#include "whisper/testbed.hpp"

using namespace whisper;

namespace {

double arg_double(int argc, char** argv, const std::string& key, double fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind(prefix, 0) == 0) return std::stod(a.substr(prefix.size()));
  }
  return fallback;
}

std::string arg_string(int argc, char** argv, const std::string& key,
                       const std::string& fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  TestbedConfig cfg;
  cfg.initial_nodes = static_cast<std::size_t>(arg_double(argc, argv, "nodes", 200));
  cfg.natted_fraction = arg_double(argc, argv, "natted", 0.7);
  cfg.latency = arg_string(argc, argv, "latency", "cluster");
  cfg.node.pss.pi_min_public = static_cast<std::size_t>(arg_double(argc, argv, "pi", 3));
  cfg.node.wcl.pi = cfg.node.pss.pi_min_public;
  cfg.seed = static_cast<std::uint64_t>(arg_double(argc, argv, "seed", 42));
  const std::size_t n_groups = static_cast<std::size_t>(arg_double(argc, argv, "groups", 0));
  const double churn_pct = arg_double(argc, argv, "churn", 0.0);
  const int minutes = static_cast<int>(arg_double(argc, argv, "minutes", 20));
  const std::string trace_path = arg_string(argc, argv, "trace", "");
  const std::string metrics_path = arg_string(argc, argv, "metrics", "");
  const std::string faults_path = arg_string(argc, argv, "faults", "");
  const std::string flight_path = arg_string(argc, argv, "flight", "");
  const std::string audit_spec = arg_string(argc, argv, "audit", "");
  const double sample_secs = arg_double(argc, argv, "sample-secs", 0);
  cfg.trace = !trace_path.empty();
  cfg.flight = !flight_path.empty() || !audit_spec.empty();
  cfg.telemetry_sample_every = static_cast<net::Time>(sample_secs * net::kSecond);

  telemetry::Vantage vantage;
  if (!audit_spec.empty()) {
    std::string err;
    if (!telemetry::Vantage::parse(audit_spec, &vantage, &err)) {
      std::fprintf(stderr, "audit: bad vantage spec: %s\n", err.c_str());
      return 1;
    }
  }

  std::printf("whisper_sim: %zu nodes, %.0f%% natted, latency=%s, Pi=%zu, %zu groups, "
              "churn=%.1f%%/min, %d minutes, seed=%llu\n\n",
              cfg.initial_nodes, cfg.natted_fraction * 100, cfg.latency.c_str(),
              cfg.node.pss.pi_min_public, n_groups, churn_pct, minutes,
              static_cast<unsigned long long>(cfg.seed));

  WhisperTestbed tb(cfg);
  Rng rng(cfg.seed ^ 0x51b);
  tb.run_for(5 * net::kMinute);

  // Optional groups: leaders on P-nodes, every node one membership.
  std::vector<ppss::Ppss*> leaders;
  std::vector<GroupId> gids;
  if (n_groups > 0) {
    auto publics = tb.alive_public_nodes();
    for (std::size_t g = 0; g < n_groups; ++g) {
      crypto::Drbg d(cfg.seed + g);
      leaders.push_back(&publics[g % publics.size()]->create_group(
          GroupId{5000 + g}, crypto::RsaKeyPair::generate(512, d)));
      gids.push_back(GroupId{5000 + g});
    }
    for (WhisperNode* node : tb.alive_nodes()) {
      const std::size_t g = rng.pick_index(gids);
      if (node->id() == leaders[g]->self()) continue;
      if (auto accr = leaders[g]->invite(node->id())) {
        node->join_group(gids[g], *accr, leaders[g]->self_descriptor());
      }
    }
    tb.run_for(3 * net::kMinute);
  }

  // Optional churn for the whole observation window.
  churn::ChurnEngine engine(
      tb.clock(),
      [&](std::size_t n) {
        std::size_t k = 0;
        for (std::size_t i = 0; i < n; ++i) {
          if (!tb.kill_random_node().is_nil()) ++k;
        }
        return k;
      },
      [&](std::size_t n) {
        for (std::size_t i = 0; i < n; ++i) tb.spawn_node();
      },
      [&] { return tb.alive_count(); });
  if (churn_pct > 0) {
    churn::ChurnPhase phase;
    phase.start = tb.clock().now();
    phase.end = phase.start + static_cast<net::Time>(minutes) * net::kMinute;
    phase.leave_fraction = churn_pct / 100.0;
    engine.schedule(phase);
  }

  if (!faults_path.empty()) {
    auto parsed = faults::parse_script_file(faults_path);
    if (!parsed.ok()) {
      std::fprintf(stderr, "faults: %s: %s\n", faults_path.c_str(), parsed.error.c_str());
      return 1;
    }
    // Script times are relative to the observation window, which starts now.
    const net::Time t0 = tb.clock().now();
    for (auto& spec : parsed.specs) {
      spec.start += t0;
      if (spec.end > 0) spec.end += t0;
    }
    tb.install_fault_fabric().schedule_all(parsed.specs);
    std::printf("faults: %zu scripted from %s\n\n", parsed.specs.size(),
                faults_path.c_str());
  }

  const double byz_fraction = arg_double(argc, argv, "byzantine", 0.0);
  if (byz_fraction > 0) {
    // Standing adversary for the whole observation window: one window per
    // misbehaviour, each claiming an equal slice of the hostile fraction.
    const std::vector<faults::FaultKind> kinds = {
        faults::FaultKind::kByzTruncate, faults::FaultKind::kByzOversize,
        faults::FaultKind::kByzBitflip,  faults::FaultKind::kByzReplay,
        faults::FaultKind::kByzFlood,    faults::FaultKind::kByzFabricate};
    std::vector<faults::FaultSpec> specs;
    for (faults::FaultKind kind : kinds) {
      faults::FaultSpec spec;
      spec.kind = kind;
      spec.start = tb.clock().now();
      spec.end = spec.start + static_cast<net::Time>(minutes) * net::kMinute;
      spec.fraction = byz_fraction / static_cast<double>(kinds.size());
      spec.count = 0;  // fraction-sized actor set
      spec.probability = 0.5;
      spec.rate = 5.0;
      specs.push_back(spec);
    }
    tb.install_fault_fabric().schedule_all(specs);
    std::printf("byzantine: %.0f%% of the deployment misbehaving (%zu windows)\n\n",
                byz_fraction * 100.0, specs.size());
  }

  std::printf("%-5s %-6s %-9s %-7s %-7s %-9s %-9s %-10s\n", "min", "alive", "exch/min",
              "fill", "clust", "wcl-ok", "wcl-fail", "traffic");
  std::uint64_t prev_done = 0;
  for (int minute = 1; minute <= minutes; ++minute) {
    tb.run_for(net::kMinute);
    std::uint64_t done = 0, wcl_ok = 0, wcl_fail = 0, up_bytes = 0;
    double fill = 0;
    for (WhisperNode* n : tb.all_nodes()) {
      done += n->pss().exchanges_completed();
      wcl_ok += n->wcl().stats().first_try_success + n->wcl().stats().alternative_success;
      wcl_fail += n->wcl().stats().no_alternative;
    }
    for (WhisperNode* n : tb.alive_nodes()) {
      fill += static_cast<double>(n->pss().view().size());
      up_bytes += tb.traffic(n->internal_endpoint()).total_up();
    }
    auto graph = tb.overlay_snapshot();
    Samples clust = pss::clustering_coefficients(graph);
    std::printf("%-5d %-6zu %-9llu %-7.1f %-7.3f %-9llu %-9llu %-7.1f MB\n", minute,
                tb.alive_count(), static_cast<unsigned long long>(done - prev_done),
                fill / static_cast<double>(tb.alive_count()), clust.mean(),
                static_cast<unsigned long long>(wcl_ok),
                static_cast<unsigned long long>(wcl_fail),
                static_cast<double>(up_bytes) / (1024.0 * 1024.0));
    prev_done = done;
  }

  std::printf("\nsummary: killed=%zu spawned=%zu packets=%llu delivered=%llu\n",
              engine.total_killed(), engine.total_spawned(),
              static_cast<unsigned long long>(tb.stack().packets_sent()),
              static_cast<unsigned long long>(tb.stack().packets_delivered()));
  if (const faults::FaultFabric* ff = tb.fault_fabric()) {
    const auto& fs = ff->stats();
    std::printf("faults: dropped=%llu delayed=%llu duplicated=%llu corrupted=%llu "
                "queued=%llu flushed=%llu paused=%llu crashed=%llu natresets=%llu\n",
                static_cast<unsigned long long>(fs.packets_dropped),
                static_cast<unsigned long long>(fs.packets_delayed),
                static_cast<unsigned long long>(fs.packets_duplicated),
                static_cast<unsigned long long>(fs.packets_corrupted),
                static_cast<unsigned long long>(fs.packets_queued),
                static_cast<unsigned long long>(fs.packets_flushed),
                static_cast<unsigned long long>(fs.nodes_paused),
                static_cast<unsigned long long>(fs.nodes_crashed),
                static_cast<unsigned long long>(fs.nat_resets));
    if (fs.byz_truncated + fs.byz_oversized + fs.byz_bitflipped + fs.byz_captured +
            fs.byz_replayed + fs.byz_flooded + fs.byz_fabricated >
        0) {
      std::printf("byzantine: truncated=%llu oversized=%llu bitflipped=%llu "
                  "captured=%llu replayed=%llu flooded=%llu fabricated=%llu\n",
                  static_cast<unsigned long long>(fs.byz_truncated),
                  static_cast<unsigned long long>(fs.byz_oversized),
                  static_cast<unsigned long long>(fs.byz_bitflipped),
                  static_cast<unsigned long long>(fs.byz_captured),
                  static_cast<unsigned long long>(fs.byz_replayed),
                  static_cast<unsigned long long>(fs.byz_flooded),
                  static_cast<unsigned long long>(fs.byz_fabricated));
    }
  }
  const double reach =
      pss::reachable_fraction(tb.overlay_snapshot(), tb.alive_nodes()[0]->id());
  std::printf("overlay reachability from %s: %.1f%%\n",
              tb.alive_nodes()[0]->id().str().c_str(), reach * 100.0);

  if (!trace_path.empty()) {
    if (telemetry::write_text_file(trace_path, telemetry::to_chrome_trace(tb.tracer()))) {
      std::printf("trace: %zu events -> %s (%llu dropped)\n", tb.tracer().events().size(),
                  trace_path.c_str(), static_cast<unsigned long long>(tb.tracer().dropped()));
    } else {
      std::fprintf(stderr, "trace: cannot write %s\n", trace_path.c_str());
      return 1;
    }
  }
  std::vector<telemetry::FlightRecord> flights;
  if (cfg.flight) flights = tb.flight().assemble();
  if (!flight_path.empty()) {
    if (telemetry::write_text_file(flight_path, telemetry::to_jsonl(flights))) {
      std::printf("flight: %zu records -> %s (%llu events dropped)\n", flights.size(),
                  flight_path.c_str(),
                  static_cast<unsigned long long>(tb.flight().dropped()));
    } else {
      std::fprintf(stderr, "flight: cannot write %s\n", flight_path.c_str());
      return 1;
    }
  }
  if (!audit_spec.empty()) {
    const telemetry::AuditReport report =
        telemetry::audit(flights, vantage, tb.all_nodes().size());
    std::printf("\naudit vantage %s:\n%s", vantage.str().c_str(),
                telemetry::format_report(report).c_str());
  }
  if (!metrics_path.empty()) {
    std::string out = telemetry::to_jsonl(tb.registry());
    if (cfg.telemetry_sample_every > 0) out += telemetry::to_jsonl(tb.recorder());
    if (telemetry::write_text_file(metrics_path, out)) {
      std::printf("metrics: %zu series -> %s\n", tb.registry().entries().size(),
                  metrics_path.c_str());
    } else {
      std::fprintf(stderr, "metrics: cannot write %s\n", metrics_path.c_str());
      return 1;
    }
  }
  return 0;
}

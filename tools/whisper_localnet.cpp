// whisper_localnet — boot a real WHISPER mesh on 127.0.0.1 and verify
// end-to-end confidential delivery.
//
//   whisper_localnet --nodes=10 [--timeout=60s] [--dir=DIR] [--keep-dir]
//                    [--noded=PATH] [--seed=7] [--flight]
//
// Forks N whisper_noded processes (one OS process per node, each with its
// own UDP socket and epoll loop), wires them through a rendezvous
// directory, and waits for every node to confirm its end of the
// join -> group -> onion-send exchange (see whisper_noded for the file
// protocol). Exit 0 iff all N delivered within the timeout.
//
// With --flight each node dumps its flight records to DIR/flight.I.jsonl,
// ready for `whisper_trace summary|audit`.
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

namespace {

std::string arg_string(int argc, char** argv, const std::string& key,
                       const std::string& fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
  }
  return fallback;
}

bool arg_flag(int argc, char** argv, const std::string& key) {
  const std::string flag = "--" + key;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

std::uint64_t arg_seconds(int argc, char** argv, const std::string& key,
                          std::uint64_t fallback) {
  std::string s = arg_string(argc, argv, key, "");
  if (s.empty()) return fallback;
  if (s.back() == 's' || s.back() == 'S') s.pop_back();
  return std::strtoull(s.c_str(), nullptr, 10);
}

double now_s() {
  timeval tv{};
  gettimeofday(&tv, nullptr);
  return static_cast<double>(tv.tv_sec) + static_cast<double>(tv.tv_usec) / 1e6;
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

/// Default noded binary: next to this one.
std::string sibling_noded(const char* argv0) {
  std::string self = argv0;
  const auto slash = self.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : self.substr(0, slash);
  return dir + "/whisper_noded";
}

void print_log_tail(const std::string& path, int lines) {
  std::ifstream in(path);
  if (!in) return;
  std::vector<std::string> tail;
  std::string line;
  while (std::getline(in, line)) {
    tail.push_back(line);
    if (tail.size() > static_cast<std::size_t>(lines)) tail.erase(tail.begin());
  }
  for (const auto& l : tail) std::fprintf(stderr, "    %s\n", l.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t nodes = std::strtoull(
      arg_string(argc, argv, "nodes", "10").c_str(), nullptr, 10);
  const std::uint64_t timeout_s = arg_seconds(argc, argv, "timeout", 60);
  const std::string seed = arg_string(argc, argv, "seed", "7");
  const bool keep_dir = arg_flag(argc, argv, "keep-dir");
  const bool flight = arg_flag(argc, argv, "flight");
  std::string noded = arg_string(argc, argv, "noded", sibling_noded(argv[0]));
  if (nodes < 2) {
    std::fprintf(stderr, "need --nodes >= 2\n");
    return 2;
  }
  if (::access(noded.c_str(), X_OK) != 0) {
    std::fprintf(stderr, "noded binary not executable: %s (%s)\n", noded.c_str(),
                 std::strerror(errno));
    return 2;
  }

  std::string dir = arg_string(argc, argv, "dir", "");
  if (dir.empty()) {
    char tmpl[] = "/tmp/whisper_localnet.XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) {
      std::fprintf(stderr, "mkdtemp: %s\n", std::strerror(errno));
      return 1;
    }
    dir = tmpl;
  } else {
    ::mkdir(dir.c_str(), 0755);
  }
  std::printf("localnet: %llu nodes, rendezvous %s, timeout %llus\n",
              (unsigned long long)nodes, dir.c_str(),
              (unsigned long long)timeout_s);

  // Fork the mesh: one whisper_noded per node, logs to DIR/log.I.
  std::vector<pid_t> pids(nodes + 1, -1);
  for (std::uint64_t i = 1; i <= nodes; ++i) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::fprintf(stderr, "fork: %s\n", std::strerror(errno));
      return 1;
    }
    if (pid == 0) {
      const std::string log = dir + "/log." + std::to_string(i);
      const int fd = ::open(log.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (fd >= 0) {
        ::dup2(fd, 1);
        ::dup2(fd, 2);
        ::close(fd);
      }
      std::vector<std::string> args = {
          noded,
          "--dir=" + dir,
          "--id=" + std::to_string(i),
          "--nodes=" + std::to_string(nodes),
          "--timeout=" + std::to_string(timeout_s),
          "--seed=" + seed,
      };
      if (flight) {
        args.push_back("--flight=" + dir + "/flight." + std::to_string(i) +
                       ".jsonl");
      }
      std::vector<char*> cargs;
      for (auto& a : args) cargs.push_back(a.data());
      cargs.push_back(nullptr);
      ::execv(noded.c_str(), cargs.data());
      std::fprintf(stderr, "execv %s: %s\n", noded.c_str(), std::strerror(errno));
      _exit(127);
    }
    pids[i] = pid;
  }

  // Wait for every delivered.I, watching for children that die early.
  const double deadline = now_s() + static_cast<double>(timeout_s);
  std::vector<bool> delivered(nodes + 1, false);
  std::uint64_t confirmed = 0;
  bool failed = false;
  while (confirmed < nodes && now_s() < deadline && !failed) {
    for (std::uint64_t i = 1; i <= nodes; ++i) {
      if (!delivered[i] && file_exists(dir + "/delivered." + std::to_string(i))) {
        delivered[i] = true;
        ++confirmed;
        std::printf("  delivered %llu/%llu (node %llu)\n",
                    (unsigned long long)confirmed, (unsigned long long)nodes,
                    (unsigned long long)i);
      }
    }
    // A child exiting non-zero before its delivery confirms is a failure.
    int status = 0;
    const pid_t dead = ::waitpid(-1, &status, WNOHANG);
    if (dead > 0) {
      for (std::uint64_t i = 1; i <= nodes; ++i) {
        if (pids[i] != dead) continue;
        pids[i] = -1;
        const bool ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
        if (!ok && !delivered[i]) {
          std::fprintf(stderr, "node %llu exited %d before delivering\n",
                       (unsigned long long)i,
                       WIFEXITED(status) ? WEXITSTATUS(status) : -1);
          failed = true;
        }
      }
    }
    ::usleep(100 * 1000);
  }

  const bool success = confirmed == nodes;
  if (!success) {
    std::fprintf(stderr, "FAIL: %llu/%llu nodes delivered within %llus\n",
                 (unsigned long long)confirmed, (unsigned long long)nodes,
                 (unsigned long long)timeout_s);
    for (std::uint64_t i = 1; i <= nodes; ++i) {
      if (delivered[i]) continue;
      std::fprintf(stderr, "  node %llu log tail:\n", (unsigned long long)i);
      print_log_tail(dir + "/log." + std::to_string(i), 5);
    }
  }

  // Tear down: TERM, grace period, then KILL; reap everything.
  for (std::uint64_t i = 1; i <= nodes; ++i) {
    if (pids[i] > 0) ::kill(pids[i], SIGTERM);
  }
  const double kill_at = now_s() + 3.0;
  std::uint64_t live = 0;
  for (std::uint64_t i = 1; i <= nodes; ++i) live += pids[i] > 0 ? 1 : 0;
  while (live > 0) {
    int status = 0;
    const pid_t dead = ::waitpid(-1, &status, WNOHANG);
    if (dead > 0) {
      for (std::uint64_t i = 1; i <= nodes; ++i) {
        if (pids[i] == dead) pids[i] = -1;
      }
      --live;
      continue;
    }
    if (now_s() > kill_at) {
      for (std::uint64_t i = 1; i <= nodes; ++i) {
        if (pids[i] > 0) ::kill(pids[i], SIGKILL);
      }
    }
    ::usleep(50 * 1000);
  }

  if (success) {
    std::printf("OK: all %llu nodes delivered\n", (unsigned long long)nodes);
    if (flight) {
      std::printf("flight records: %s/flight.<id>.jsonl — try:\n"
                  "  whisper_trace summary %s/flight.1.jsonl\n",
                  dir.c_str(), dir.c_str());
    }
  }
  if (!keep_dir && !flight && success) {
    // Best-effort cleanup of the rendezvous directory.
    std::string cmd = "rm -rf '" + dir + "'";
    if (dir.rfind("/tmp/whisper_localnet.", 0) == 0) (void)!std::system(cmd.c_str());
  } else {
    std::printf("rendezvous dir kept: %s\n", dir.c_str());
  }
  return success ? 0 : 1;
}

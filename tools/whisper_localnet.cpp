// whisper_localnet — boot a real WHISPER mesh on 127.0.0.1 and verify
// end-to-end confidential delivery, optionally under crash chaos.
//
//   whisper_localnet --nodes=10 [--timeout=60s] [--dir=DIR] [--keep-dir]
//                    [--noded=PATH] [--seed=7] [--flight]
//                    [--chaos=kill:0.3[,stop:1]]
//
// Forks N whisper_noded processes (one OS process per node, each with its
// own UDP socket and epoll loop), wires them through a rendezvous
// directory, and waits for every node to confirm its end of the
// join -> group -> onion-send exchange (see whisper_noded for the file
// protocol). Exit 0 iff all N delivered within the timeout.
//
// --chaos turns the launcher into a crash supervisor (DESIGN.md §14.4).
// Victim selection is deterministic from --seed; each spec value is a
// count when >= 1, a fraction of the mesh when < 1 (the Byzantine fabric's
// actor-selection idiom):
//
//   kill:F   after the mesh converges, SIGKILL F nodes, erase their
//            delivery receipts, and restart each from its --state-dir with
//            exponential backoff (250 ms * 2^attempt, capped at 5 s). The
//            run passes only if every victim comes back as ITSELF — its
//            rendezvous card byte-identical (same node id, key, port), its
//            heartbeat incarnation bumped — and re-confirms delivery.
//   stop:F   SIGSTOP F different nodes for a few seconds, then SIGCONT.
//            The supervisor must flag them hung (pid alive, heartbeat
//            seq frozen past the stall threshold) while stopped and see
//            the heartbeat resume after SIGCONT: the liveness probe must
//            tell a wedged process from a dead one.
//
// Chaos implies per-node state dirs (DIR/state.I) and --linger, so the
// surviving mesh keeps serving while victims rejoin. Children that die
// when the supervisor did not kill them fail the run, with the exit code
// or signal named in the report.
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

namespace {

volatile std::sig_atomic_t g_child_died = 0;

void handle_sigchld(int) { g_child_died = 1; }

std::string arg_string(int argc, char** argv, const std::string& key,
                       const std::string& fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
  }
  return fallback;
}

bool arg_flag(int argc, char** argv, const std::string& key) {
  const std::string flag = "--" + key;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

std::uint64_t arg_seconds(int argc, char** argv, const std::string& key,
                          std::uint64_t fallback) {
  std::string s = arg_string(argc, argv, key, "");
  if (s.empty()) return fallback;
  if (s.back() == 's' || s.back() == 'S') s.pop_back();
  return std::strtoull(s.c_str(), nullptr, 10);
}

double now_s() {
  timeval tv{};
  gettimeofday(&tv, nullptr);
  return static_cast<double>(tv.tv_sec) + static_cast<double>(tv.tv_usec) / 1e6;
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::string out((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  return out;
}

/// Default noded binary: next to this one.
std::string sibling_noded(const char* argv0) {
  std::string self = argv0;
  const auto slash = self.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : self.substr(0, slash);
  return dir + "/whisper_noded";
}

void print_log_tail(const std::string& path, int lines) {
  std::ifstream in(path);
  if (!in) return;
  std::vector<std::string> tail;
  std::string line;
  while (std::getline(in, line)) {
    tail.push_back(line);
    if (tail.size() > static_cast<std::size_t>(lines)) tail.erase(tail.begin());
  }
  for (const auto& l : tail) std::fprintf(stderr, "    %s\n", l.c_str());
}

std::string exit_cause(int status) {
  if (WIFEXITED(status)) return "exit " + std::to_string(WEXITSTATUS(status));
  if (WIFSIGNALED(status)) {
    const int sig = WTERMSIG(status);
    return "signal " + std::to_string(sig) + " (" + strsignal(sig) + ")";
  }
  return "status " + std::to_string(status);
}

/// splitmix64 — deterministic victim selection from --seed, no libs.
std::uint64_t splitmix64(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// --chaos=kill:0.3,stop:1 — each value is a count when >= 1, a fraction
/// of the mesh when < 1 (mirrors the fault fabric's actor selection).
struct ChaosSpec {
  double kill = 0.0;
  double stop = 0.0;
  bool enabled() const { return kill > 0.0 || stop > 0.0; }

  static std::uint64_t resolve(double v, std::uint64_t nodes) {
    if (v <= 0.0) return 0;
    if (v >= 1.0) return static_cast<std::uint64_t>(v);
    const auto n = static_cast<std::uint64_t>(v * static_cast<double>(nodes) + 0.5);
    return n == 0 ? 1 : n;
  }
};

bool parse_chaos(const std::string& spec, ChaosSpec* out) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string part = spec.substr(pos, comma - pos);
    const std::size_t colon = part.find(':');
    if (colon == std::string::npos) return false;
    const std::string kind = part.substr(0, colon);
    const double value = std::strtod(part.c_str() + colon + 1, nullptr);
    if (kind == "kill") {
      out->kill = value;
    } else if (kind == "stop") {
      out->stop = value;
    } else {
      return false;
    }
    pos = comma + 1;
  }
  return out->enabled();
}

/// Parsed heartbeat file: "pid incarnation seq".
struct Heartbeat {
  long pid = 0;
  unsigned incarnation = 0;
  unsigned long long seq = 0;
  bool ok = false;
};

Heartbeat read_heartbeat(const std::string& path) {
  Heartbeat hb;
  const std::string text = read_file(path);
  hb.ok = std::sscanf(text.c_str(), "%ld %u %llu", &hb.pid, &hb.incarnation,
                      &hb.seq) == 3;
  return hb;
}

/// Everything the supervisor tracks about one node process.
struct Child {
  pid_t pid = -1;
  /// Chaos bookkeeping.
  bool kill_victim = false;
  bool stop_victim = false;
  bool stopped = false;       // currently SIGSTOP'd
  bool expected_dead = false; // we sent SIGKILL; next reap is ours
  int restarts = 0;
  double restart_at = 0.0;    // 0 = no restart scheduled
  std::string card_before;    // rendezvous card bytes before the kill
  unsigned inc_before = 0;    // heartbeat incarnation before the kill
  bool recovered = false;
  bool hung_seen = false;     // liveness probe flagged a frozen heartbeat
  bool resumed_seen = false;  // ...and saw it advance again after SIGCONT
  /// Liveness probe state.
  unsigned long long last_seq = 0;
  double seq_changed_at = 0.0;
  std::string death_cause;    // exit/signal description of last death
};

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t nodes = std::strtoull(
      arg_string(argc, argv, "nodes", "10").c_str(), nullptr, 10);
  const std::uint64_t timeout_s = arg_seconds(argc, argv, "timeout", 60);
  const std::string seed = arg_string(argc, argv, "seed", "7");
  const bool keep_dir = arg_flag(argc, argv, "keep-dir");
  const bool flight = arg_flag(argc, argv, "flight");
  std::string noded = arg_string(argc, argv, "noded", sibling_noded(argv[0]));
  ChaosSpec chaos;
  const std::string chaos_arg = arg_string(argc, argv, "chaos", "");
  if (!chaos_arg.empty() && !parse_chaos(chaos_arg, &chaos)) {
    std::fprintf(stderr, "bad --chaos spec '%s' (want kill:F[,stop:F])\n",
                 chaos_arg.c_str());
    return 2;
  }
  if (nodes < 2) {
    std::fprintf(stderr, "need --nodes >= 2\n");
    return 2;
  }
  if (::access(noded.c_str(), X_OK) != 0) {
    std::fprintf(stderr, "noded binary not executable: %s (%s)\n", noded.c_str(),
                 std::strerror(errno));
    return 2;
  }

  std::string dir = arg_string(argc, argv, "dir", "");
  if (dir.empty()) {
    char tmpl[] = "/tmp/whisper_localnet.XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) {
      std::fprintf(stderr, "mkdtemp: %s\n", std::strerror(errno));
      return 1;
    }
    dir = tmpl;
  } else {
    ::mkdir(dir.c_str(), 0755);
  }
  std::printf("localnet: %llu nodes, rendezvous %s, timeout %llus%s%s\n",
              (unsigned long long)nodes, dir.c_str(),
              (unsigned long long)timeout_s, chaos.enabled() ? ", chaos " : "",
              chaos.enabled() ? chaos_arg.c_str() : "");

  std::signal(SIGCHLD, handle_sigchld);  // prompt reaping: interrupts usleep

  // Children must outlive both the convergence and the recovery window;
  // the supervisor, not the node timeout, ends a chaos run.
  const std::uint64_t child_timeout_s =
      chaos.enabled() ? 2 * timeout_s + 15 : timeout_s;

  std::vector<Child> children(nodes + 1);

  // Fork one whisper_noded. Initial boot truncates DIR/log.I; a chaos
  // restart appends, keeping the pre-crash tail for the report.
  const auto spawn_node = [&](std::uint64_t i, bool restart) -> pid_t {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::fprintf(stderr, "fork: %s\n", std::strerror(errno));
      return -1;
    }
    if (pid == 0) {
      std::signal(SIGCHLD, SIG_DFL);
      const std::string log = dir + "/log." + std::to_string(i);
      const int fd = ::open(log.c_str(),
                            O_WRONLY | O_CREAT | (restart ? O_APPEND : O_TRUNC),
                            0644);
      if (fd >= 0) {
        ::dup2(fd, 1);
        ::dup2(fd, 2);
        ::close(fd);
      }
      std::vector<std::string> args = {
          noded,
          "--dir=" + dir,
          "--id=" + std::to_string(i),
          "--nodes=" + std::to_string(nodes),
          "--timeout=" + std::to_string(child_timeout_s),
          "--seed=" + seed,
      };
      if (chaos.enabled()) {
        args.push_back("--state-dir=" + dir + "/state." + std::to_string(i));
        args.push_back("--linger");
      }
      if (flight) {
        args.push_back("--flight=" + dir + "/flight." + std::to_string(i) +
                       ".jsonl");
      }
      std::vector<char*> cargs;
      for (auto& a : args) cargs.push_back(a.data());
      cargs.push_back(nullptr);
      ::execv(noded.c_str(), cargs.data());
      std::fprintf(stderr, "execv %s: %s\n", noded.c_str(), std::strerror(errno));
      _exit(127);
    }
    return pid;
  };

  for (std::uint64_t i = 1; i <= nodes; ++i) {
    children[i].pid = spawn_node(i, /*restart=*/false);
    if (children[i].pid < 0) return 1;
  }

  bool failed = false;

  /// Reap every dead child. A death the supervisor caused (SIGKILL victim,
  /// teardown) is expected; anything else fails the run unless the child
  /// finished cleanly after delivering. Returns ids that died expectedly.
  const auto reap = [&](bool teardown) {
    g_child_died = 0;
    int status = 0;
    pid_t dead = 0;
    while ((dead = ::waitpid(-1, &status, WNOHANG)) > 0) {
      for (std::uint64_t i = 1; i <= nodes; ++i) {
        Child& c = children[i];
        if (c.pid != dead) continue;
        c.pid = -1;
        c.death_cause = exit_cause(status);
        if (c.expected_dead || teardown) {
          c.expected_dead = false;
          break;
        }
        const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
        const bool had_delivered =
            file_exists(dir + "/delivered." + std::to_string(i));
        if (!clean || !had_delivered) {
          std::fprintf(stderr, "node %llu died unexpectedly: %s\n",
                       (unsigned long long)i, c.death_cause.c_str());
          if (chaos.enabled() && c.kill_victim && c.restarts > 0 &&
              c.restarts < 5) {
            // A restarted victim crashed again: back off exponentially and
            // try once more rather than giving up on first stumble.
            const double backoff = 0.25 * static_cast<double>(1 << c.restarts);
            c.restart_at = now_s() + (backoff > 5.0 ? 5.0 : backoff);
            std::fprintf(stderr, "  rescheduling restart #%d of node %llu\n",
                         c.restarts + 1, (unsigned long long)i);
          } else {
            failed = true;
          }
        }
        break;
      }
    }
  };

  // --- Phase 1: convergence — every node confirms delivery. ---
  const double deadline = now_s() + static_cast<double>(timeout_s);
  std::vector<bool> delivered(nodes + 1, false);
  std::uint64_t confirmed = 0;
  while (confirmed < nodes && now_s() < deadline && !failed) {
    for (std::uint64_t i = 1; i <= nodes; ++i) {
      if (!delivered[i] && file_exists(dir + "/delivered." + std::to_string(i))) {
        delivered[i] = true;
        ++confirmed;
        std::printf("  delivered %llu/%llu (node %llu)\n",
                    (unsigned long long)confirmed, (unsigned long long)nodes,
                    (unsigned long long)i);
      }
    }
    reap(/*teardown=*/false);
    ::usleep(100 * 1000);
  }

  bool success = confirmed == nodes;
  if (!success) {
    std::fprintf(stderr, "FAIL: %llu/%llu nodes delivered within %llus\n",
                 (unsigned long long)confirmed, (unsigned long long)nodes,
                 (unsigned long long)timeout_s);
    for (std::uint64_t i = 1; i <= nodes; ++i) {
      if (delivered[i]) continue;
      std::fprintf(stderr, "  node %llu (%s) log tail:\n", (unsigned long long)i,
                   children[i].death_cause.empty() ? "running"
                                                   : children[i].death_cause.c_str());
      print_log_tail(dir + "/log." + std::to_string(i), 5);
    }
  }

  // --- Phase 2: chaos — SIGKILL + restart, SIGSTOP + liveness probe. ---
  if (success && chaos.enabled()) {
    const std::uint64_t kill_n = ChaosSpec::resolve(chaos.kill, nodes);
    const std::uint64_t stop_n = ChaosSpec::resolve(chaos.stop, nodes);
    // Deterministic victim draw: shuffle 1..N by seeded splitmix, take
    // kill victims then stop victims from the front (disjoint sets).
    std::uint64_t prng = std::strtoull(seed.c_str(), nullptr, 10) ^ 0xc4405;
    std::vector<std::uint64_t> ids;
    for (std::uint64_t i = 1; i <= nodes; ++i) ids.push_back(i);
    for (std::size_t i = ids.size(); i > 1; --i) {
      std::swap(ids[i - 1], ids[splitmix64(prng) % i]);
    }
    if (kill_n + stop_n > nodes) {
      std::fprintf(stderr, "chaos spec selects more victims than nodes\n");
      return 2;
    }

    const double chaos_start = now_s();
    const double stall_threshold = 3.0;   // hb frozen longer than this = hung
    const double cont_at = chaos_start + 5.0;
    bool cont_sent = false;

    for (std::uint64_t k = 0; k < kill_n; ++k) {
      const std::uint64_t v = ids[k];
      Child& c = children[v];
      c.kill_victim = true;
      c.card_before = read_file(dir + "/card." + std::to_string(v));
      c.inc_before = read_heartbeat(dir + "/hb." + std::to_string(v)).incarnation;
      c.expected_dead = true;
      ::kill(c.pid, SIGKILL);
      // The receipt must be re-earned by the restarted incarnation.
      ::unlink((dir + "/delivered." + std::to_string(v)).c_str());
      c.restarts = 1;
      c.restart_at = chaos_start + 0.25;
      std::printf("chaos: SIGKILL node %llu (pid %d), restart in 250 ms\n",
                  (unsigned long long)v, (int)c.pid);
    }
    for (std::uint64_t k = 0; k < stop_n; ++k) {
      const std::uint64_t v = ids[kill_n + k];
      Child& c = children[v];
      c.stop_victim = true;
      c.stopped = true;
      ::kill(c.pid, SIGSTOP);
      std::printf("chaos: SIGSTOP node %llu (pid %d), SIGCONT in 5 s\n",
                  (unsigned long long)v, (int)c.pid);
    }

    // Recovery window: a fresh `timeout_s`, independent of convergence.
    const double recover_deadline = now_s() + static_cast<double>(timeout_s);
    while (now_s() < recover_deadline && !failed) {
      const double t = now_s();
      reap(/*teardown=*/false);

      // Restart due victims from their state dirs.
      for (std::uint64_t i = 1; i <= nodes; ++i) {
        Child& c = children[i];
        if (c.restart_at != 0.0 && t >= c.restart_at && c.pid < 0) {
          c.restart_at = 0.0;
          c.pid = spawn_node(i, /*restart=*/true);
          std::printf("chaos: node %llu restarting from %s/state.%llu "
                      "(attempt %d)\n",
                      (unsigned long long)i, dir.c_str(), (unsigned long long)i,
                      c.restarts);
        }
      }

      // SIGCONT the stopped set once their stall has lasted long enough
      // for the probe to have seen it.
      if (!cont_sent && t >= cont_at) {
        cont_sent = true;
        for (std::uint64_t i = 1; i <= nodes; ++i) {
          Child& c = children[i];
          if (c.stop_victim && c.stopped) {
            c.stopped = false;
            ::kill(c.pid, SIGCONT);
            std::printf("chaos: SIGCONT node %llu\n", (unsigned long long)i);
          }
        }
      }

      // Liveness probe: pid alive + heartbeat seq frozen = hung, not dead.
      for (std::uint64_t i = 1; i <= nodes; ++i) {
        Child& c = children[i];
        if (c.pid < 0) continue;
        const Heartbeat hb = read_heartbeat(dir + "/hb." + std::to_string(i));
        if (!hb.ok) continue;
        if (hb.seq != c.last_seq) {
          if (c.stop_victim && c.hung_seen && !c.resumed_seen) {
            c.resumed_seen = true;
            std::printf("chaos: node %llu heartbeat resumed after SIGCONT\n",
                        (unsigned long long)i);
          }
          c.last_seq = hb.seq;
          c.seq_changed_at = t;
          continue;
        }
        if (c.seq_changed_at != 0.0 && t - c.seq_changed_at > stall_threshold &&
            ::kill(c.pid, 0) == 0 && !c.hung_seen) {
          c.hung_seen = true;
          std::printf("chaos: node %llu is HUNG (pid %d alive, heartbeat "
                      "frozen %.1fs)\n",
                      (unsigned long long)i, (int)c.pid, t - c.seq_changed_at);
        }
      }

      // Recovery gate per kill victim: delivery re-confirmed AND the node
      // came back as itself (card byte-identical, incarnation bumped).
      bool all_recovered = true;
      for (std::uint64_t i = 1; i <= nodes; ++i) {
        Child& c = children[i];
        if (c.kill_victim && !c.recovered) {
          if (!file_exists(dir + "/delivered." + std::to_string(i))) {
            all_recovered = false;
            continue;
          }
          const std::string card_now = read_file(dir + "/card." + std::to_string(i));
          const Heartbeat hb = read_heartbeat(dir + "/hb." + std::to_string(i));
          if (card_now != c.card_before) {
            std::fprintf(stderr,
                         "chaos FAIL: node %llu came back with a different "
                         "identity card\n",
                         (unsigned long long)i);
            failed = true;
          } else if (!hb.ok || hb.incarnation <= c.inc_before) {
            std::fprintf(stderr,
                         "chaos FAIL: node %llu did not bump its incarnation "
                         "(%u -> %u)\n",
                         (unsigned long long)i, c.inc_before,
                         hb.ok ? hb.incarnation : 0);
            failed = true;
          } else {
            c.recovered = true;
            std::printf("chaos: node %llu recovered — identity intact, "
                        "incarnation %u -> %u, delivery re-confirmed\n",
                        (unsigned long long)i, c.inc_before, hb.incarnation);
          }
        }
        if (c.kill_victim && !c.recovered) all_recovered = false;
        if (c.stop_victim && (!c.hung_seen || !c.resumed_seen)) {
          all_recovered = false;
        }
      }
      if (all_recovered) break;
      ::usleep(100 * 1000);
    }

    for (std::uint64_t i = 1; i <= nodes; ++i) {
      const Child& c = children[i];
      if (c.kill_victim && !c.recovered) {
        std::fprintf(stderr,
                     "chaos FAIL: node %llu never re-confirmed delivery "
                     "(last death: %s); log tail:\n",
                     (unsigned long long)i,
                     c.death_cause.empty() ? "n/a" : c.death_cause.c_str());
        print_log_tail(dir + "/log." + std::to_string(i), 8);
        failed = true;
      }
      if (c.stop_victim && !c.hung_seen) {
        std::fprintf(stderr,
                     "chaos FAIL: liveness probe never flagged stopped node "
                     "%llu as hung\n",
                     (unsigned long long)i);
        failed = true;
      }
      if (c.stop_victim && c.hung_seen && !c.resumed_seen) {
        std::fprintf(stderr,
                     "chaos FAIL: node %llu heartbeat did not resume after "
                     "SIGCONT\n",
                     (unsigned long long)i);
        failed = true;
      }
    }
    success = !failed;
  }

  // Tear down: CONT (a stopped child cannot die of TERM), TERM, grace
  // period, then KILL; reap everything.
  for (std::uint64_t i = 1; i <= nodes; ++i) {
    if (children[i].pid > 0) {
      ::kill(children[i].pid, SIGCONT);
      ::kill(children[i].pid, SIGTERM);
    }
  }
  const double kill_at = now_s() + 3.0;
  std::uint64_t live = 0;
  for (std::uint64_t i = 1; i <= nodes; ++i) live += children[i].pid > 0 ? 1 : 0;
  while (live > 0) {
    reap(/*teardown=*/true);
    live = 0;
    for (std::uint64_t i = 1; i <= nodes; ++i) live += children[i].pid > 0 ? 1 : 0;
    if (live == 0) break;
    if (now_s() > kill_at) {
      for (std::uint64_t i = 1; i <= nodes; ++i) {
        if (children[i].pid > 0) ::kill(children[i].pid, SIGKILL);
      }
    }
    ::usleep(50 * 1000);
  }

  if (success) {
    if (chaos.enabled()) {
      std::printf("OK: all %llu nodes delivered; chaos victims rejoined with "
                  "their original identities\n",
                  (unsigned long long)nodes);
    } else {
      std::printf("OK: all %llu nodes delivered\n", (unsigned long long)nodes);
    }
    if (flight) {
      std::printf("flight records: %s/flight.<id>.jsonl — try:\n"
                  "  whisper_trace summary %s/flight.1.jsonl\n",
                  dir.c_str(), dir.c_str());
    }
  }
  if (!keep_dir && !flight && success) {
    // Best-effort cleanup of the rendezvous directory.
    std::string cmd = "rm -rf '" + dir + "'";
    if (dir.rfind("/tmp/whisper_localnet.", 0) == 0) (void)!std::system(cmd.c_str());
  } else {
    std::printf("rendezvous dir kept: %s\n", dir.c_str());
  }
  return success ? 0 : 1;
}

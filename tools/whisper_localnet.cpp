// whisper_localnet — boot a real WHISPER mesh on 127.0.0.1 and verify
// end-to-end confidential delivery, optionally under crash chaos.
//
//   whisper_localnet --nodes=10 [--timeout=60s] [--dir=DIR] [--keep-dir]
//                    [--noded=PATH] [--seed=7] [--flight]
//                    [--chaos=kill:0.3[,stop:1][,natreboot:1]]
//                    [--stats-interval=0.5] [--scrape-admin] [--trace-wire]
//                    [--nat=symmetric:0.3,port_restricted:0.3]
//                    [--impair=loss:0.05,delay:20ms~10ms] [--nat-lease=SECS]
//
// Forks N whisper_noded processes (one OS process per node, each with its
// own UDP socket and epoll loop), wires them through a rendezvous
// directory, and waits for every node to confirm its end of the
// join -> group -> onion-send exchange (see whisper_noded for the file
// protocol). Exit 0 iff all N delivered within the timeout.
//
// Observability (DESIGN.md §15): the supervisor scrapes each node's binary
// stats.I health record (its liveness probe — there is no separate
// heartbeat file) and folds the fleet into DIR/fleet.jsonl: one JSON line
// per node per new record, ascending node id, followed by one summed
// "fleet" line per scrape round — a merged time series that shows kill /
// recovery dips. Every child shares one CLOCK_MONOTONIC epoch (--epoch)
// so timestamps are directly comparable. --scrape-admin additionally
// queries every node's admin UDP socket mid-run and gates the replies
// against the rendezvous delivery receipts. --trace-wire passes the
// cross-process flight tracing opt-in through (implies --flight).
//
// --chaos turns the launcher into a crash supervisor (DESIGN.md §14.4).
// Victim selection is deterministic from --seed; each spec value is a
// count when >= 1, a fraction of the mesh when < 1 (the Byzantine fabric's
// actor-selection idiom):
//
//   kill:F   after the mesh converges, SIGKILL F nodes, erase their
//            delivery receipts, and restart each from its --state-dir with
//            exponential backoff (250 ms * 2^attempt, capped at 5 s). The
//            run passes only if every victim comes back as ITSELF — its
//            rendezvous card byte-identical (same node id, key, port), its
//            health-record incarnation bumped — and re-confirms delivery.
//   stop:F   SIGSTOP F different nodes for a few seconds, then SIGCONT.
//            The supervisor must flag them hung (pid alive, health-record
//            seq frozen past the stall threshold) while stopped and see
//            the records resume after SIGCONT: the liveness probe must
//            tell a wedged process from a dead one.
//   natreboot:F  power-cycle the emulated NAT in front of F *natted*
//            nodes (admin kNatReboot wipes every mapping + mapping
//            socket), erase their delivery receipts, and require each
//            victim to re-earn its receipt through fresh mappings —
//            re-registration, hole re-punching and relay fallback proven
//            on a live process. Requires --nat.
//
// Chaos implies per-node state dirs (DIR/state.I) and --linger, so the
// surviving mesh keeps serving while victims rejoin. Children that die
// when the supervisor did not kill them fail the run, with the exit code
// or signal named in the report.
//
// NAT adversity (DESIGN.md §16): --nat assigns each node a NAT type from a
// mix spec ("TYPE:F,..." — F a count when >= 1, a fraction when < 1; the
// remainder stays public; node 1, the leader/relay, is always public). Each
// natted noded runs behind the deterministic ShimStack, so traversal runs
// against the same mapping/filtering rules the simulator enforces — on real
// sockets. --impair passes loss/delay/reorder/dup/rate shaping to every
// node; --nat-lease shortens the emulated mapping lease so expiry-driven
// route refresh happens on localnet timescales. On a convergence failure
// the report names each missing node's NAT type and last traversal state
// (registered? direct/punched/relayed sends, live mappings) scraped from
// its stats records. After a NAT-mixed run the supervisor also audits the
// rendezvous surfaces for internal-endpoint leaks: a natted node's private
// address must never appear in any contact card — the address-level
// unlinkability claim (zero linkable pairs) the relay architecture makes.
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/bytes.hpp"
#include "common/serialize.hpp"
#include "nat/rules.hpp"
#include "pss/contact.hpp"
#include "telemetry/health.hpp"

namespace tel = whisper::telemetry;
namespace nat = whisper::nat;

namespace {

volatile std::sig_atomic_t g_child_died = 0;

void handle_sigchld(int) { g_child_died = 1; }

std::string arg_string(int argc, char** argv, const std::string& key,
                       const std::string& fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
  }
  return fallback;
}

bool arg_flag(int argc, char** argv, const std::string& key) {
  const std::string flag = "--" + key;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

std::uint64_t arg_seconds(int argc, char** argv, const std::string& key,
                          std::uint64_t fallback) {
  std::string s = arg_string(argc, argv, key, "");
  if (s.empty()) return fallback;
  if (s.back() == 's' || s.back() == 'S') s.pop_back();
  return std::strtoull(s.c_str(), nullptr, 10);
}

double now_s() {
  timeval tv{};
  gettimeofday(&tv, nullptr);
  return static_cast<double>(tv.tv_sec) + static_cast<double>(tv.tv_usec) / 1e6;
}

std::uint64_t monotonic_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::string out((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  return out;
}

whisper::Bytes read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::string s((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
  return whisper::Bytes(s.begin(), s.end());
}

/// Default noded binary: next to this one.
std::string sibling_noded(const char* argv0) {
  std::string self = argv0;
  const auto slash = self.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : self.substr(0, slash);
  return dir + "/whisper_noded";
}

void print_log_tail(const std::string& path, int lines) {
  std::ifstream in(path);
  if (!in) return;
  std::vector<std::string> tail;
  std::string line;
  while (std::getline(in, line)) {
    tail.push_back(line);
    if (tail.size() > static_cast<std::size_t>(lines)) tail.erase(tail.begin());
  }
  for (const auto& l : tail) std::fprintf(stderr, "    %s\n", l.c_str());
}

std::string exit_cause(int status) {
  if (WIFEXITED(status)) return "exit " + std::to_string(WEXITSTATUS(status));
  if (WIFSIGNALED(status)) {
    const int sig = WTERMSIG(status);
    return "signal " + std::to_string(sig) + " (" + strsignal(sig) + ")";
  }
  return "status " + std::to_string(status);
}

/// splitmix64 — deterministic victim selection from --seed, no libs.
std::uint64_t splitmix64(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// --chaos=kill:0.3,stop:1,natreboot:1 — each value is a count when >= 1,
/// a fraction of the mesh when < 1 (mirrors the fault fabric's actor
/// selection).
struct ChaosSpec {
  double kill = 0.0;
  double stop = 0.0;
  double natreboot = 0.0;
  bool enabled() const { return kill > 0.0 || stop > 0.0 || natreboot > 0.0; }

  static std::uint64_t resolve(double v, std::uint64_t nodes) {
    if (v <= 0.0) return 0;
    if (v >= 1.0) return static_cast<std::uint64_t>(v);
    const auto n = static_cast<std::uint64_t>(v * static_cast<double>(nodes) + 0.5);
    return n == 0 ? 1 : n;
  }
};

bool parse_chaos(const std::string& spec, ChaosSpec* out) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string part = spec.substr(pos, comma - pos);
    const std::size_t colon = part.find(':');
    if (colon == std::string::npos) return false;
    const std::string kind = part.substr(0, colon);
    const double value = std::strtod(part.c_str() + colon + 1, nullptr);
    if (kind == "kill") {
      out->kill = value;
    } else if (kind == "stop") {
      out->stop = value;
    } else if (kind == "natreboot") {
      out->natreboot = value;
    } else {
      return false;
    }
    pos = comma + 1;
  }
  return out->enabled();
}

/// --nat=symmetric:0.3,port_restricted:0.3 — one (type, amount) pair per
/// item; amounts are counts when >= 1, fractions of the mesh when < 1.
/// Unassigned nodes stay public. "--nat=symmetric" alone nats everyone but
/// the leader symmetrically.
struct NatMixItem {
  nat::NatType type = nat::NatType::kNone;
  double amount = 0.0;
};

bool parse_nat_mix(const std::string& spec, std::vector<NatMixItem>* out) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string part = spec.substr(pos, comma - pos);
    const std::size_t colon = part.find(':');
    NatMixItem item;
    const std::string name = part.substr(0, colon);
    const auto type = nat::nat_type_from_name(name);
    if (!type || *type == nat::NatType::kNone) return false;
    item.type = *type;
    item.amount = colon == std::string::npos
                      ? 1e18  // bare type: everything that can be natted
                      : std::strtod(part.c_str() + colon + 1, nullptr);
    if (item.amount <= 0) return false;
    out->push_back(item);
    pos = comma + 1;
  }
  return !out->empty();
}

double metric_or(const std::map<std::string, double>& m, const std::string& key,
                 double fallback = 0) {
  const auto it = m.find(key);
  return it == m.end() ? fallback : it->second;
}

/// Liveness probe read off a node's binary stats.I health record: the
/// fixed header fields work from any record, keyframe or delta, even
/// when the metric delta chain is broken (health.hpp).
struct Probe {
  long pid = 0;
  unsigned incarnation = 0;
  unsigned long long seq = 0;
  bool ok = false;
};

Probe read_stats_probe(const std::string& path) {
  Probe p;
  const whisper::Bytes bytes = read_bytes(path);
  if (bytes.empty()) return p;
  const auto snap = tel::decode_health_record(bytes);
  if (!snap) return p;
  p.pid = static_cast<long>(snap->pid);
  p.incarnation = snap->incarnation;
  p.seq = snap->seq;
  p.ok = true;
  return p;
}

/// Everything the supervisor tracks about one node process.
struct Child {
  pid_t pid = -1;
  /// Chaos bookkeeping.
  bool kill_victim = false;
  bool stop_victim = false;
  bool stopped = false;       // currently SIGSTOP'd
  bool expected_dead = false; // we sent SIGKILL; next reap is ours
  int restarts = 0;
  double restart_at = 0.0;    // 0 = no restart scheduled
  std::string card_before;    // rendezvous card bytes before the kill
  unsigned inc_before = 0;    // health-record incarnation before the kill
  bool recovered = false;
  bool hung_seen = false;     // liveness probe flagged frozen stats records
  bool resumed_seen = false;  // ...and saw them advance again after SIGCONT
  bool natreboot_victim = false;
  bool reboot_acked = false;     // admin kNatReboot got its keyframe reply
  bool nat_recovered = false;    // delivery re-confirmed post NAT reboot
  /// Liveness probe state.
  unsigned long long last_seq = 0;
  double seq_changed_at = 0.0;
  std::string death_cause;    // exit/signal description of last death
};

/// One admin query: 4-byte request to 127.0.0.1:port, one health record
/// back (every op replies with a keyframe — for kNatReboot that reply IS
/// the delivery confirmation). Retries a few times with a poll() timeout —
/// the node services its admin socket off a 50 ms timer.
std::optional<tel::HealthSnapshot> query_admin(
    std::uint16_t port, tel::AdminOp op = tel::AdminOp::kStats) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return std::nullopt;
  sockaddr_in to{};
  to.sin_family = AF_INET;
  to.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  to.sin_port = htons(port);
  const whisper::Bytes req = tel::encode_admin_request(op);
  std::optional<tel::HealthSnapshot> out;
  for (int attempt = 0; attempt < 3 && !out; ++attempt) {
    if (::sendto(fd, req.data(), req.size(), 0,
                 reinterpret_cast<sockaddr*>(&to), sizeof to) < 0) {
      break;
    }
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 1000) <= 0) continue;
    std::vector<std::uint8_t> buf(tel::kMaxHealthPayloadBytes + 64);
    const ssize_t n = ::recv(fd, buf.data(), buf.size(), 0);
    if (n <= 0) continue;
    out = tel::decode_health_record(
        whisper::BytesView(buf.data(), static_cast<std::size_t>(n)));
  }
  ::close(fd);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t nodes = std::strtoull(
      arg_string(argc, argv, "nodes", "10").c_str(), nullptr, 10);
  const std::uint64_t timeout_s = arg_seconds(argc, argv, "timeout", 60);
  const std::string seed = arg_string(argc, argv, "seed", "7");
  const bool keep_dir = arg_flag(argc, argv, "keep-dir");
  const bool trace_wire = arg_flag(argc, argv, "trace-wire");
  const bool flight = arg_flag(argc, argv, "flight") || trace_wire;
  const bool scrape_admin = arg_flag(argc, argv, "scrape-admin");
  const std::string stats_interval =
      arg_string(argc, argv, "stats-interval", "0.5");
  std::string noded = arg_string(argc, argv, "noded", sibling_noded(argv[0]));
  ChaosSpec chaos;
  const std::string chaos_arg = arg_string(argc, argv, "chaos", "");
  if (!chaos_arg.empty() && !parse_chaos(chaos_arg, &chaos)) {
    std::fprintf(stderr,
                 "bad --chaos spec '%s' (want kill:F[,stop:F][,natreboot:F])\n",
                 chaos_arg.c_str());
    return 2;
  }
  const std::string nat_arg = arg_string(argc, argv, "nat", "");
  std::vector<NatMixItem> nat_mix;
  if (!nat_arg.empty() && !parse_nat_mix(nat_arg, &nat_mix)) {
    std::fprintf(stderr,
                 "bad --nat spec '%s' (want TYPE:F,... with TYPE in "
                 "full_cone/restricted_cone/port_restricted_cone/symmetric)\n",
                 nat_arg.c_str());
    return 2;
  }
  const std::string impair_arg = arg_string(argc, argv, "impair", "");
  const std::string nat_lease_arg = arg_string(argc, argv, "nat-lease", "");
  if (nodes < 2) {
    std::fprintf(stderr, "need --nodes >= 2\n");
    return 2;
  }
  if (chaos.natreboot > 0 && nat_mix.empty()) {
    std::fprintf(stderr, "--chaos=natreboot needs --nat (victims must be natted)\n");
    return 2;
  }

  // NAT assignment: seeded shuffle of 2..N (node 1 — the leader, everyone's
  // bootstrap relay — stays public), then deal types off the front in spec
  // order. Deterministic per --seed, independent of the chaos draw.
  std::vector<nat::NatType> nat_of(nodes + 1, nat::NatType::kNone);
  if (!nat_mix.empty()) {
    std::uint64_t prng = std::strtoull(seed.c_str(), nullptr, 10) ^ 0x4a7;
    std::vector<std::uint64_t> ids;
    for (std::uint64_t i = 2; i <= nodes; ++i) ids.push_back(i);
    for (std::size_t i = ids.size(); i > 1; --i) {
      std::swap(ids[i - 1], ids[splitmix64(prng) % i]);
    }
    std::size_t next = 0;
    for (const NatMixItem& item : nat_mix) {
      std::uint64_t n = item.amount >= 1e17
                            ? ids.size()
                            : ChaosSpec::resolve(item.amount, nodes);
      for (; n > 0 && next < ids.size(); --n, ++next) {
        nat_of[ids[next]] = item.type;
      }
    }
    std::string mix_report;
    for (std::uint64_t i = 2; i <= nodes; ++i) {
      if (nat_of[i] == nat::NatType::kNone) continue;
      mix_report += " " + std::to_string(i) + "=" + nat::nat_type_name(nat_of[i]);
    }
    std::printf("nat mix:%s (others public)\n",
                mix_report.empty() ? " none" : mix_report.c_str());
  }
  if (::access(noded.c_str(), X_OK) != 0) {
    std::fprintf(stderr, "noded binary not executable: %s (%s)\n", noded.c_str(),
                 std::strerror(errno));
    return 2;
  }

  std::string dir = arg_string(argc, argv, "dir", "");
  if (dir.empty()) {
    char tmpl[] = "/tmp/whisper_localnet.XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) {
      std::fprintf(stderr, "mkdtemp: %s\n", std::strerror(errno));
      return 1;
    }
    dir = tmpl;
  } else {
    ::mkdir(dir.c_str(), 0755);
  }
  std::printf("localnet: %llu nodes, rendezvous %s, timeout %llus%s%s\n",
              (unsigned long long)nodes, dir.c_str(),
              (unsigned long long)timeout_s, chaos.enabled() ? ", chaos " : "",
              chaos.enabled() ? chaos_arg.c_str() : "");

  std::signal(SIGCHLD, handle_sigchld);  // prompt reaping: interrupts usleep

  // One shared CLOCK_MONOTONIC zero for the whole fleet: every child's
  // now() — and therefore every health record and flight event timestamp —
  // counts from the same instant.
  const std::uint64_t epoch_ns = monotonic_ns();

  // Children must outlive both the convergence and the recovery window;
  // the supervisor, not the node timeout, ends a chaos run.
  const std::uint64_t child_timeout_s =
      chaos.enabled() ? 2 * timeout_s + 15 : timeout_s;

  std::vector<Child> children(nodes + 1);

  // Fork one whisper_noded. Initial boot truncates DIR/log.I; a chaos
  // restart appends, keeping the pre-crash tail for the report.
  const auto spawn_node = [&](std::uint64_t i, bool restart) -> pid_t {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::fprintf(stderr, "fork: %s\n", std::strerror(errno));
      return -1;
    }
    if (pid == 0) {
      std::signal(SIGCHLD, SIG_DFL);
      const std::string log = dir + "/log." + std::to_string(i);
      const int fd = ::open(log.c_str(),
                            O_WRONLY | O_CREAT | (restart ? O_APPEND : O_TRUNC),
                            0644);
      if (fd >= 0) {
        ::dup2(fd, 1);
        ::dup2(fd, 2);
        ::close(fd);
      }
      std::vector<std::string> args = {
          noded,
          "--dir=" + dir,
          "--id=" + std::to_string(i),
          "--nodes=" + std::to_string(nodes),
          "--timeout=" + std::to_string(child_timeout_s),
          "--seed=" + seed,
          "--epoch=" + std::to_string(epoch_ns),
          "--stats-interval=" + stats_interval,
      };
      if (chaos.enabled()) {
        args.push_back("--state-dir=" + dir + "/state." + std::to_string(i));
        args.push_back("--linger");
      }
      if (nat_of[i] != nat::NatType::kNone) {
        args.push_back(std::string("--nat=") + nat::nat_type_name(nat_of[i]));
      }
      if (!impair_arg.empty()) args.push_back("--impair=" + impair_arg);
      if (!nat_lease_arg.empty()) args.push_back("--nat-lease=" + nat_lease_arg);
      if (flight) {
        args.push_back("--flight=" + dir + "/flight." + std::to_string(i) +
                       ".jsonl");
      }
      if (trace_wire) args.push_back("--trace-wire");
      std::vector<char*> cargs;
      for (auto& a : args) cargs.push_back(a.data());
      cargs.push_back(nullptr);
      ::execv(noded.c_str(), cargs.data());
      std::fprintf(stderr, "execv %s: %s\n", noded.c_str(), std::strerror(errno));
      _exit(127);
    }
    return pid;
  };

  for (std::uint64_t i = 1; i <= nodes; ++i) {
    children[i].pid = spawn_node(i, /*restart=*/false);
    if (children[i].pid < 0) return 1;
  }

  bool failed = false;

  // Fleet time series: per-node HealthAccumulators fold each node's
  // keyframe/delta stream; every new record becomes one JSON line in
  // DIR/fleet.jsonl (ascending node id), and each scrape round that saw
  // news appends one summed "fleet" line. Deterministic ordering makes the
  // file diffable in CI.
  std::vector<tel::HealthAccumulator> accs(nodes + 1);
  std::vector<std::pair<unsigned long long, unsigned>> last_emitted(
      nodes + 1, {0, 0});  // (seq, incarnation) per node
  std::uint64_t fleet_rounds = 0;
  std::FILE* fleet = std::fopen((dir + "/fleet.jsonl").c_str(), "w");
  if (fleet == nullptr) {
    std::fprintf(stderr, "cannot write %s/fleet.jsonl\n", dir.c_str());
    return 1;
  }

  const auto scrape_fleet = [&] {
    bool any = false;
    for (std::uint64_t i = 1; i <= nodes; ++i) {
      const whisper::Bytes bytes = read_bytes(dir + "/stats." + std::to_string(i));
      if (bytes.empty()) continue;
      if (!accs[i].apply(whisper::BytesView(bytes))) continue;
      const auto key = std::make_pair(
          (unsigned long long)accs[i].last().seq, accs[i].last().incarnation);
      if (key == last_emitted[i]) continue;  // no new record since last round
      last_emitted[i] = key;
      std::fputs(tel::health_to_json(accs[i].last(), accs[i].metrics(),
                                     std::to_string(i))
                     .c_str(),
                 fleet);
      std::fputc('\n', fleet);
      any = true;
    }
    if (!any) return;
    tel::HealthSnapshot sum;
    std::map<std::string, double> msum;
    sum.seq = ++fleet_rounds;
    for (std::uint64_t i = 1; i <= nodes; ++i) {
      if (!accs[i].valid()) continue;
      const tel::HealthSnapshot& s = accs[i].last();
      if (s.now_us > sum.now_us) sum.now_us = s.now_us;
      if (s.uptime_us > sum.uptime_us) sum.uptime_us = s.uptime_us;
      sum.groups += s.groups;
      sum.wcl_backlog += s.wcl_backlog;
      sum.pending_forwards += s.pending_forwards;
      sum.pss_view += s.pss_view;
      sum.pss_reserve += s.pss_reserve;
      sum.quarantined += s.quarantined;
      sum.peer_restarts += s.peer_restarts;
      sum.decode_rejects += s.decode_rejects;
      sum.rate_limited += s.rate_limited;
      sum.rss_kb += s.rss_kb;
      sum.cpu_us += s.cpu_us;
      for (const auto& [k, v] : accs[i].metrics()) msum[k] += v;
    }
    std::fputs(tel::health_to_json(sum, msum, "fleet").c_str(), fleet);
    std::fputc('\n', fleet);
    std::fflush(fleet);
  };

  /// Reap every dead child. A death the supervisor caused (SIGKILL victim,
  /// teardown) is expected; anything else fails the run unless the child
  /// finished cleanly after delivering. Returns ids that died expectedly.
  const auto reap = [&](bool teardown) {
    g_child_died = 0;
    int status = 0;
    pid_t dead = 0;
    while ((dead = ::waitpid(-1, &status, WNOHANG)) > 0) {
      for (std::uint64_t i = 1; i <= nodes; ++i) {
        Child& c = children[i];
        if (c.pid != dead) continue;
        c.pid = -1;
        c.death_cause = exit_cause(status);
        if (c.expected_dead || teardown) {
          c.expected_dead = false;
          break;
        }
        const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
        const bool had_delivered =
            file_exists(dir + "/delivered." + std::to_string(i));
        if (!clean || !had_delivered) {
          std::fprintf(stderr, "node %llu died unexpectedly: %s\n",
                       (unsigned long long)i, c.death_cause.c_str());
          if (chaos.enabled() && c.kill_victim && c.restarts > 0 &&
              c.restarts < 5) {
            // A restarted victim crashed again: back off exponentially and
            // try once more rather than giving up on first stumble.
            const double backoff = 0.25 * static_cast<double>(1 << c.restarts);
            c.restart_at = now_s() + (backoff > 5.0 ? 5.0 : backoff);
            std::fprintf(stderr, "  rescheduling restart #%d of node %llu\n",
                         c.restarts + 1, (unsigned long long)i);
          } else {
            failed = true;
          }
        }
        break;
      }
    }
  };

  // --- Phase 1: convergence — every node confirms delivery. ---
  const double deadline = now_s() + static_cast<double>(timeout_s);
  std::vector<bool> delivered(nodes + 1, false);
  std::uint64_t confirmed = 0;
  while (confirmed < nodes && now_s() < deadline && !failed) {
    for (std::uint64_t i = 1; i <= nodes; ++i) {
      if (!delivered[i] && file_exists(dir + "/delivered." + std::to_string(i))) {
        delivered[i] = true;
        ++confirmed;
        std::printf("  delivered %llu/%llu (node %llu)\n",
                    (unsigned long long)confirmed, (unsigned long long)nodes,
                    (unsigned long long)i);
      }
    }
    scrape_fleet();
    reap(/*teardown=*/false);
    ::usleep(100 * 1000);
  }

  bool success = confirmed == nodes;
  if (!success) {
    std::fprintf(stderr, "FAIL: %llu/%llu nodes delivered within %llus\n",
                 (unsigned long long)confirmed, (unsigned long long)nodes,
                 (unsigned long long)timeout_s);
    for (std::uint64_t i = 1; i <= nodes; ++i) {
      if (delivered[i]) continue;
      std::fprintf(stderr, "  node %llu (%s) log tail:\n", (unsigned long long)i,
                   children[i].death_cause.empty() ? "running"
                                                   : children[i].death_cause.c_str());
      print_log_tail(dir + "/log." + std::to_string(i), 5);
      // Traversal diagnostics off the node's last scraped stats record:
      // a node that never registered with its relay, or that registered but
      // punched/relayed nothing, names its failure stage directly.
      if (accs[i].valid()) {
        const auto& m = accs[i].metrics();
        std::fprintf(
            stderr,
            "    nat=%s registered=%s sends(direct/punched/relayed)="
            "%.0f/%.0f/%.0f probes=%.0f mappings=%.0f rx_kernel_drops=%.0f\n",
            nat::nat_type_name(nat_of[i]),
            metric_or(m, "nylon.registered") > 0 ? "yes" : "NO",
            metric_or(m, "nylon.sends.direct"),
            metric_or(m, "nylon.sends.punched"),
            metric_or(m, "nylon.sends.relayed"),
            metric_or(m, "nylon.probes.sent"),
            metric_or(m, "shim.nat.active"),
            metric_or(m, "udp.rx_kernel_drops"));
      } else {
        std::fprintf(stderr,
                     "    nat=%s — no stats record ever scraped (process "
                     "never published)\n",
                     nat::nat_type_name(nat_of[i]));
      }
    }
  }

  // --- Admin scrape gate: query every node's admin socket mid-run and
  // cross-check the replies against the rendezvous receipts. ---
  if (success && scrape_admin) {
    double fleet_delivered = 0;
    std::uint64_t replies = 0;
    for (std::uint64_t i = 1; i <= nodes; ++i) {
      const std::uint16_t port = static_cast<std::uint16_t>(
          std::strtoul(read_file(dir + "/admin." + std::to_string(i)).c_str(),
                       nullptr, 10));
      if (port == 0) {
        std::fprintf(stderr, "admin FAIL: node %llu published no admin port\n",
                     (unsigned long long)i);
        continue;
      }
      const auto snap = query_admin(port);
      if (!snap || snap->node != i || !snap->keyframe || snap->pid == 0) {
        std::fprintf(stderr, "admin FAIL: node %llu gave no valid reply\n",
                     (unsigned long long)i);
        continue;
      }
      ++replies;
      for (const auto& [k, v] : snap->metrics) {
        if (k == "wcl.onions.delivered") fleet_delivered += v;
      }
    }
    std::uint64_t receipts = 0;
    for (std::uint64_t i = 1; i <= nodes; ++i) {
      receipts += file_exists(dir + "/delivered." + std::to_string(i)) ? 1 : 0;
    }
    // Every delivery receipt implies at least one onion opened at its final
    // destination somewhere in the fleet.
    if (replies != nodes || fleet_delivered + 0.5 < static_cast<double>(receipts)) {
      std::fprintf(stderr,
                   "admin FAIL: %llu/%llu replies, fleet onions delivered "
                   "%.0f vs %llu receipts\n",
                   (unsigned long long)replies, (unsigned long long)nodes,
                   fleet_delivered, (unsigned long long)receipts);
      success = false;
      failed = true;
    } else {
      std::printf("admin scrape: %llu/%llu replies, %.0f onions delivered "
                  ">= %llu receipts\n",
                  (unsigned long long)replies, (unsigned long long)nodes,
                  fleet_delivered, (unsigned long long)receipts);
    }
  }

  // --- Phase 2: chaos — SIGKILL + restart, SIGSTOP + liveness probe. ---
  if (success && chaos.enabled()) {
    const std::uint64_t kill_n = ChaosSpec::resolve(chaos.kill, nodes);
    const std::uint64_t stop_n = ChaosSpec::resolve(chaos.stop, nodes);
    // Deterministic victim draw: shuffle 1..N by seeded splitmix, take
    // kill victims then stop victims from the front (disjoint sets).
    std::uint64_t prng = std::strtoull(seed.c_str(), nullptr, 10) ^ 0xc4405;
    std::vector<std::uint64_t> ids;
    for (std::uint64_t i = 1; i <= nodes; ++i) ids.push_back(i);
    for (std::size_t i = ids.size(); i > 1; --i) {
      std::swap(ids[i - 1], ids[splitmix64(prng) % i]);
    }
    if (kill_n + stop_n > nodes) {
      std::fprintf(stderr, "chaos spec selects more victims than nodes\n");
      return 2;
    }

    const double chaos_start = now_s();
    const double stall_threshold = 3.0;   // stats frozen longer = hung
    const double cont_at = chaos_start + 5.0;
    bool cont_sent = false;

    for (std::uint64_t k = 0; k < kill_n; ++k) {
      const std::uint64_t v = ids[k];
      Child& c = children[v];
      c.kill_victim = true;
      c.card_before = read_file(dir + "/card." + std::to_string(v));
      c.inc_before =
          read_stats_probe(dir + "/stats." + std::to_string(v)).incarnation;
      c.expected_dead = true;
      ::kill(c.pid, SIGKILL);
      // The receipt must be re-earned by the restarted incarnation.
      ::unlink((dir + "/delivered." + std::to_string(v)).c_str());
      c.restarts = 1;
      c.restart_at = chaos_start + 0.25;
      std::printf("chaos: SIGKILL node %llu (pid %d), restart in 250 ms\n",
                  (unsigned long long)v, (int)c.pid);
    }
    for (std::uint64_t k = 0; k < stop_n; ++k) {
      const std::uint64_t v = ids[kill_n + k];
      Child& c = children[v];
      c.stop_victim = true;
      c.stopped = true;
      ::kill(c.pid, SIGSTOP);
      std::printf("chaos: SIGSTOP node %llu (pid %d), SIGCONT in 5 s\n",
                  (unsigned long long)v, (int)c.pid);
    }

    // NAT reboots: natted nodes only, disjoint from the kill/stop sets,
    // taken in the same shuffled order. The admin request wipes every
    // mapping (and closes the mapping sockets) inside the victim's shim;
    // the receipt is unlinked after the reply so re-delivery can only
    // happen through mappings the rebooted NAT allocated afresh.
    const std::uint64_t natreboot_n = ChaosSpec::resolve(chaos.natreboot, nodes);
    std::uint64_t rebooted = 0;
    for (std::size_t k = kill_n + stop_n;
         k < ids.size() && rebooted < natreboot_n; ++k) {
      const std::uint64_t v = ids[k];
      if (nat_of[v] == nat::NatType::kNone) continue;
      Child& c = children[v];
      const std::uint16_t port = static_cast<std::uint16_t>(
          std::strtoul(read_file(dir + "/admin." + std::to_string(v)).c_str(),
                       nullptr, 10));
      c.natreboot_victim = true;
      std::optional<tel::HealthSnapshot> snap;
      if (port != 0) snap = query_admin(port, tel::AdminOp::kNatReboot);
      c.reboot_acked = snap.has_value();
      ::unlink((dir + "/delivered." + std::to_string(v)).c_str());
      std::printf("chaos: NAT reboot node %llu (%s)%s — receipt erased, "
                  "must re-traverse\n",
                  (unsigned long long)v, nat::nat_type_name(nat_of[v]),
                  c.reboot_acked ? "" : " [no admin ack]");
      ++rebooted;
    }
    if (rebooted < natreboot_n) {
      std::fprintf(stderr,
                   "chaos FAIL: only %llu of %llu requested natreboot victims "
                   "available (natted, not already a victim)\n",
                   (unsigned long long)rebooted, (unsigned long long)natreboot_n);
      failed = true;
    }

    // Recovery window: a fresh `timeout_s`, independent of convergence.
    const double recover_deadline = now_s() + static_cast<double>(timeout_s);
    while (now_s() < recover_deadline && !failed) {
      const double t = now_s();
      reap(/*teardown=*/false);
      scrape_fleet();

      // Restart due victims from their state dirs.
      for (std::uint64_t i = 1; i <= nodes; ++i) {
        Child& c = children[i];
        if (c.restart_at != 0.0 && t >= c.restart_at && c.pid < 0) {
          c.restart_at = 0.0;
          c.pid = spawn_node(i, /*restart=*/true);
          std::printf("chaos: node %llu restarting from %s/state.%llu "
                      "(attempt %d)\n",
                      (unsigned long long)i, dir.c_str(), (unsigned long long)i,
                      c.restarts);
        }
      }

      // SIGCONT the stopped set once their stall has lasted long enough
      // for the probe to have seen it.
      if (!cont_sent && t >= cont_at) {
        cont_sent = true;
        for (std::uint64_t i = 1; i <= nodes; ++i) {
          Child& c = children[i];
          if (c.stop_victim && c.stopped) {
            c.stopped = false;
            ::kill(c.pid, SIGCONT);
            std::printf("chaos: SIGCONT node %llu\n", (unsigned long long)i);
          }
        }
      }

      // Liveness probe: pid alive + health-record seq frozen = hung, not
      // dead. Same versioned record the fleet scrape reads — there is no
      // separate heartbeat format.
      for (std::uint64_t i = 1; i <= nodes; ++i) {
        Child& c = children[i];
        if (c.pid < 0) continue;
        const Probe hb = read_stats_probe(dir + "/stats." + std::to_string(i));
        if (!hb.ok) continue;
        if (hb.seq != c.last_seq) {
          if (c.stop_victim && c.hung_seen && !c.resumed_seen) {
            c.resumed_seen = true;
            std::printf("chaos: node %llu stats resumed after SIGCONT\n",
                        (unsigned long long)i);
          }
          c.last_seq = hb.seq;
          c.seq_changed_at = t;
          continue;
        }
        if (c.seq_changed_at != 0.0 && t - c.seq_changed_at > stall_threshold &&
            ::kill(c.pid, 0) == 0 && !c.hung_seen) {
          c.hung_seen = true;
          std::printf("chaos: node %llu is HUNG (pid %d alive, stats "
                      "frozen %.1fs)\n",
                      (unsigned long long)i, (int)c.pid, t - c.seq_changed_at);
        }
      }

      // Recovery gate per kill victim: delivery re-confirmed AND the node
      // came back as itself (card byte-identical, incarnation bumped).
      bool all_recovered = true;
      for (std::uint64_t i = 1; i <= nodes; ++i) {
        Child& c = children[i];
        if (c.kill_victim && !c.recovered) {
          if (!file_exists(dir + "/delivered." + std::to_string(i))) {
            all_recovered = false;
            continue;
          }
          const std::string card_now = read_file(dir + "/card." + std::to_string(i));
          const Probe hb = read_stats_probe(dir + "/stats." + std::to_string(i));
          if (card_now != c.card_before) {
            std::fprintf(stderr,
                         "chaos FAIL: node %llu came back with a different "
                         "identity card\n",
                         (unsigned long long)i);
            failed = true;
          } else if (!hb.ok || hb.incarnation <= c.inc_before) {
            std::fprintf(stderr,
                         "chaos FAIL: node %llu did not bump its incarnation "
                         "(%u -> %u)\n",
                         (unsigned long long)i, c.inc_before,
                         hb.ok ? hb.incarnation : 0);
            failed = true;
          } else {
            c.recovered = true;
            std::printf("chaos: node %llu recovered — identity intact, "
                        "incarnation %u -> %u, delivery re-confirmed\n",
                        (unsigned long long)i, c.inc_before, hb.incarnation);
          }
        }
        if (c.kill_victim && !c.recovered) all_recovered = false;
        if (c.stop_victim && (!c.hung_seen || !c.resumed_seen)) {
          all_recovered = false;
        }
        // NAT-reboot gate: the receipt must come back, re-earned through
        // post-reboot mappings (re-registration, then a pong traversing
        // fresh holes or the relay).
        if (c.natreboot_victim && !c.nat_recovered) {
          if (file_exists(dir + "/delivered." + std::to_string(i))) {
            c.nat_recovered = true;
            std::printf("chaos: node %llu re-delivered after NAT reboot\n",
                        (unsigned long long)i);
          } else {
            all_recovered = false;
          }
        }
      }
      if (all_recovered) break;
      ::usleep(100 * 1000);
    }

    for (std::uint64_t i = 1; i <= nodes; ++i) {
      const Child& c = children[i];
      if (c.kill_victim && !c.recovered) {
        std::fprintf(stderr,
                     "chaos FAIL: node %llu never re-confirmed delivery "
                     "(last death: %s); log tail:\n",
                     (unsigned long long)i,
                     c.death_cause.empty() ? "n/a" : c.death_cause.c_str());
        print_log_tail(dir + "/log." + std::to_string(i), 8);
        failed = true;
      }
      if (c.stop_victim && !c.hung_seen) {
        std::fprintf(stderr,
                     "chaos FAIL: liveness probe never flagged stopped node "
                     "%llu as hung\n",
                     (unsigned long long)i);
        failed = true;
      }
      if (c.stop_victim && c.hung_seen && !c.resumed_seen) {
        std::fprintf(stderr,
                     "chaos FAIL: node %llu stats did not resume after "
                     "SIGCONT\n",
                     (unsigned long long)i);
        failed = true;
      }
      if (c.natreboot_victim && !c.nat_recovered) {
        std::fprintf(stderr,
                     "chaos FAIL: node %llu (%s) never re-delivered after its "
                     "NAT rebooted%s; log tail:\n",
                     (unsigned long long)i, nat::nat_type_name(nat_of[i]),
                     c.reboot_acked ? "" : " (admin reboot unacked)");
        print_log_tail(dir + "/log." + std::to_string(i), 8);
        failed = true;
      }
    }
    success = !failed;
  }

  // Tear down: CONT (a stopped child cannot die of TERM), TERM, grace
  // period, then KILL; reap everything.
  for (std::uint64_t i = 1; i <= nodes; ++i) {
    if (children[i].pid > 0) {
      ::kill(children[i].pid, SIGCONT);
      ::kill(children[i].pid, SIGTERM);
    }
  }
  const double kill_at = now_s() + 3.0;
  std::uint64_t live = 0;
  for (std::uint64_t i = 1; i <= nodes; ++i) live += children[i].pid > 0 ? 1 : 0;
  while (live > 0) {
    reap(/*teardown=*/true);
    live = 0;
    for (std::uint64_t i = 1; i <= nodes; ++i) live += children[i].pid > 0 ? 1 : 0;
    if (live == 0) break;
    if (now_s() > kill_at) {
      for (std::uint64_t i = 1; i <= nodes; ++i) {
        if (children[i].pid > 0) ::kill(children[i].pid, SIGKILL);
      }
    }
    ::usleep(50 * 1000);
  }
  // Final scrape: exit-time records (noded writes one on shutdown) land in
  // the timeline before the file closes.
  scrape_fleet();
  std::fclose(fleet);

  // Address-level unlinkability audit (NAT runs): a natted node's internal
  // endpoint (the shim's 10/8 synthetic address) must never reach a
  // rendezvous surface other nodes read — its contact card must advertise
  // its relay, not itself. One leak would let an observer link the node's
  // group traffic to its private identity; the gate is zero such pairs.
  if (success && !nat_mix.empty()) {
    std::uint64_t leaks = 0, natted_cards = 0;
    for (std::uint64_t i = 1; i <= nodes; ++i) {
      std::ifstream in(dir + "/card." + std::to_string(i));
      std::string hex;
      in >> hex;
      if (hex.empty()) continue;
      const whisper::Bytes bytes = whisper::from_hex(hex);
      whisper::Reader r(bytes);
      const auto card = whisper::pss::ContactCard::deserialize(r);
      const bool internal_leak = (card.addr.ip >> 24) == 10;
      if (nat_of[i] != nat::NatType::kNone) {
        ++natted_cards;
        if (card.is_public || internal_leak) {
          std::fprintf(stderr,
                       "linkability FAIL: natted node %llu advertises %s "
                       "(public=%d) in its card\n",
                       (unsigned long long)i, card.addr.str().c_str(),
                       card.is_public);
          ++leaks;
        }
      } else if (internal_leak) {
        std::fprintf(stderr,
                     "linkability FAIL: node %llu leaked an internal address "
                     "%s\n",
                     (unsigned long long)i, card.addr.str().c_str());
        ++leaks;
      }
    }
    if (leaks > 0) {
      success = false;
      failed = true;
    } else {
      std::printf("linkability: 0 internal-endpoint leaks across %llu natted "
                  "cards — zero linkable pairs\n",
                  (unsigned long long)natted_cards);
    }
  }

  if (success) {
    if (chaos.enabled()) {
      std::printf("OK: all %llu nodes delivered; chaos victims rejoined with "
                  "their original identities\n",
                  (unsigned long long)nodes);
    } else {
      std::printf("OK: all %llu nodes delivered\n", (unsigned long long)nodes);
    }
    std::printf("fleet timeline: %s/fleet.jsonl\n", dir.c_str());
    if (flight) {
      std::printf("flight records: %s/flight.<id>.jsonl — try:\n"
                  "  whisper_trace summary %s/flight.1.jsonl\n",
                  dir.c_str(), dir.c_str());
    }
    if (trace_wire) {
      std::printf("cross-process events: %s/flight.<id>.events.jsonl — try:\n"
                  "  whisper_trace summary %s/flight.*.events.jsonl\n",
                  dir.c_str(), dir.c_str());
    }
  }
  if (!keep_dir && !flight && success) {
    // Best-effort cleanup of the rendezvous directory.
    std::string cmd = "rm -rf '" + dir + "'";
    if (dir.rfind("/tmp/whisper_localnet.", 0) == 0) (void)!std::system(cmd.c_str());
  } else {
    std::printf("rendezvous dir kept: %s\n", dir.c_str());
  }
  return success ? 0 : 1;
}

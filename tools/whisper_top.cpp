// whisper_top — live fleet view over a whisper_localnet rendezvous
// directory (DESIGN.md §15).
//
//   whisper_top --dir=DIR [--nodes=N] [--interval=1] [--once] [--json]
//               [--admin]
//
// Scrapes each node's binary stats.I health record (the same versioned
// keyframe/delta stream the chaos supervisor probes) through a per-node
// HealthAccumulator and renders a refreshing table: delivery counters and
// rate, PSS exchange RTT p95, quarantines, peer restarts, incarnation,
// rss/cpu. A node whose record stops advancing is flagged stale — exactly
// the supervisor's hung-vs-dead signal, read by an operator.
//
//   --nodes=N    probe ids 1..N (default: every stats.* file in DIR)
//   --interval   refresh period in seconds (default 1)
//   --once       one sample, no screen clearing — for scripts
//   --json       emit machine-readable JSONL (health_to_json lines,
//                per-node ascending then one "fleet" sum) instead of the
//                table; with --once this is the CI dump format
//   --admin      scrape via each node's admin UDP socket (admin.I ports)
//                instead of the stats files: exercises the request/reply
//                path and always yields fresh keyframes
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/bytes.hpp"
#include "telemetry/health.hpp"

namespace tel = whisper::telemetry;

namespace {

std::string arg_string(int argc, char** argv, const std::string& key,
                       const std::string& fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
  }
  return fallback;
}

bool arg_flag(int argc, char** argv, const std::string& key) {
  const std::string flag = "--" + key;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

whisper::Bytes read_bytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  whisper::Bytes out;
  std::uint8_t buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    out.insert(out.end(), buf, buf + n);
  }
  std::fclose(f);
  return out;
}

/// Node ids found as stats.I files in the rendezvous dir, ascending.
std::vector<std::uint64_t> discover_nodes(const std::string& dir) {
  std::vector<std::uint64_t> ids;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return ids;
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.rfind("stats.", 0) != 0) continue;
    const std::uint64_t id = std::strtoull(name.c_str() + 6, nullptr, 10);
    if (id > 0) ids.push_back(id);
  }
  ::closedir(d);
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// One admin stats query (see whisper_noded: 4-byte request, one keyframe
/// health record back).
std::optional<tel::HealthSnapshot> query_admin(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return std::nullopt;
  sockaddr_in to{};
  to.sin_family = AF_INET;
  to.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  to.sin_port = htons(port);
  const whisper::Bytes req = tel::encode_admin_request(tel::AdminOp::kStats);
  std::optional<tel::HealthSnapshot> out;
  for (int attempt = 0; attempt < 2 && !out; ++attempt) {
    if (::sendto(fd, req.data(), req.size(), 0,
                 reinterpret_cast<sockaddr*>(&to), sizeof to) < 0) {
      break;
    }
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 500) <= 0) continue;
    std::vector<std::uint8_t> buf(tel::kMaxHealthPayloadBytes + 64);
    const ssize_t n = ::recv(fd, buf.data(), buf.size(), 0);
    if (n <= 0) continue;
    out = tel::decode_health_record(
        whisper::BytesView(buf.data(), static_cast<std::size_t>(n)));
  }
  ::close(fd);
  return out;
}

std::uint16_t read_port(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return 0;
  unsigned long port = 0;
  const int rc = std::fscanf(f, "%lu", &port);
  std::fclose(f);
  return rc == 1 ? static_cast<std::uint16_t>(port) : 0;
}

double metric_or(const std::map<std::string, double>& m, const std::string& key) {
  const auto it = m.find(key);
  return it == m.end() ? 0.0 : it->second;
}

/// Short NAT-type label off the nylon.nat_type gauge (nat/rules.hpp order).
const char* nat_label(double type) {
  switch (static_cast<int>(type)) {
    case 1: return "fc";    // full cone
    case 2: return "rc";    // restricted cone
    case 3: return "prc";   // port-restricted cone
    case 4: return "sym";   // symmetric
    default: return "pub";
  }
}

/// Traversal split "direct/punched/relayed" — how this node's outbound
/// data actually reached peers (nylon path counters).
std::string traversal_cell(const std::map<std::string, double>& m) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.0f/%.0f/%.0f",
                metric_or(m, "nylon.sends.direct"),
                metric_or(m, "nylon.sends.punched"),
                metric_or(m, "nylon.sends.relayed"));
  return buf;
}

/// Rolling per-node view state across refreshes.
struct NodeView {
  tel::HealthAccumulator acc;
  std::uint64_t last_seq = 0;
  unsigned last_inc = 0;
  int frozen_rounds = 0;      // refreshes without a new record
  double prev_delivered = 0;  // for the delivery-rate column
  std::uint64_t prev_now_us = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = arg_string(argc, argv, "dir", "");
  const std::uint64_t nodes_arg =
      std::strtoull(arg_string(argc, argv, "nodes", "0").c_str(), nullptr, 10);
  const double interval =
      std::strtod(arg_string(argc, argv, "interval", "1").c_str(), nullptr);
  const bool once = arg_flag(argc, argv, "once");
  const bool json = arg_flag(argc, argv, "json");
  const bool admin = arg_flag(argc, argv, "admin");
  if (dir.empty()) {
    std::fprintf(stderr,
                 "usage: whisper_top --dir=DIR [--nodes=N] [--interval=1]\n"
                 "       [--once] [--json] [--admin]\n");
    return 2;
  }

  std::map<std::uint64_t, NodeView> views;
  const bool tty = ::isatty(1) != 0;

  for (;;) {
    std::vector<std::uint64_t> ids;
    if (nodes_arg > 0) {
      for (std::uint64_t i = 1; i <= nodes_arg; ++i) ids.push_back(i);
    } else {
      ids = discover_nodes(dir);
    }

    // Scrape every node; track freshness by (incarnation, seq) movement.
    for (const std::uint64_t id : ids) {
      NodeView& v = views[id];
      bool applied = false;
      if (admin) {
        const std::uint16_t port =
            read_port(dir + "/admin." + std::to_string(id));
        if (port != 0) {
          if (const auto snap = query_admin(port)) {
            v.acc.apply(*snap);
            applied = true;
          }
        }
      } else {
        const whisper::Bytes bytes =
            read_bytes(dir + "/stats." + std::to_string(id));
        if (!bytes.empty()) applied = v.acc.apply(whisper::BytesView(bytes));
        // A cold start mid-stream lands on a delta record and cannot
        // resync until the next keyframe; a live node's admin socket can
        // hand us one right now.
        if (v.acc.valid() && !v.acc.synced()) {
          const std::uint16_t port =
              read_port(dir + "/admin." + std::to_string(id));
          if (port != 0) {
            if (const auto snap = query_admin(port)) {
              v.acc.apply(*snap);
              applied = true;
            }
          }
        }
      }
      if (!applied || !v.acc.valid()) {
        ++v.frozen_rounds;
        continue;
      }
      const tel::HealthSnapshot& s = v.acc.last();
      if (s.seq != v.last_seq || s.incarnation != v.last_inc) {
        v.last_seq = s.seq;
        v.last_inc = s.incarnation;
        v.frozen_rounds = 0;
      } else {
        ++v.frozen_rounds;
      }
    }

    if (json) {
      tel::HealthSnapshot sum;
      std::map<std::string, double> msum;
      for (auto& [id, v] : views) {
        if (!v.acc.valid()) continue;
        std::printf("%s\n",
                    tel::health_to_json(v.acc.last(), v.acc.metrics(),
                                        std::to_string(id))
                        .c_str());
        const tel::HealthSnapshot& s = v.acc.last();
        if (s.now_us > sum.now_us) sum.now_us = s.now_us;
        sum.groups += s.groups;
        sum.wcl_backlog += s.wcl_backlog;
        sum.pending_forwards += s.pending_forwards;
        sum.pss_view += s.pss_view;
        sum.pss_reserve += s.pss_reserve;
        sum.quarantined += s.quarantined;
        sum.peer_restarts += s.peer_restarts;
        sum.decode_rejects += s.decode_rejects;
        sum.rate_limited += s.rate_limited;
        sum.rss_kb += s.rss_kb;
        sum.cpu_us += s.cpu_us;
        for (const auto& [k, val] : v.acc.metrics()) msum[k] += val;
      }
      std::printf("%s\n", tel::health_to_json(sum, msum, "fleet").c_str());
      std::fflush(stdout);
    } else {
      if (tty && !once) std::printf("\033[H\033[2J");
      std::printf("whisper_top — %s%s\n", dir.c_str(),
                  admin ? " (admin sockets)" : "");
      std::printf(
          "%4s %5s %4s %6s %9s %8s %9s %4s %13s %6s %6s %8s %8s %7s  %s\n",
          "node", "pid", "inc", "seq", "delivered", "dlvr/s", "rtt_p95ms",
          "nat", "d/p/r", "quar", "rstrt", "backlog", "rss_mb", "cpu_s",
          "state");
      double fleet_delivered = 0, fleet_rate = 0;
      for (auto& [id, v] : views) {
        if (!v.acc.valid()) {
          std::printf("%4llu %*s no data\n", (unsigned long long)id, 5, "-");
          continue;
        }
        const tel::HealthSnapshot& s = v.acc.last();
        const auto& m = v.acc.metrics();
        const double delivered = metric_or(m, "wcl.onions.delivered");
        double rate = 0;
        if (v.prev_now_us != 0 && s.now_us > v.prev_now_us) {
          rate = (delivered - v.prev_delivered) /
                 (static_cast<double>(s.now_us - v.prev_now_us) / 1e6);
        }
        v.prev_delivered = delivered;
        v.prev_now_us = s.now_us;
        fleet_delivered += delivered;
        fleet_rate += rate;
        const double rtt_p95_ms = metric_or(m, "pss.exchange.rtt_us#p95") / 1e3;
        // Stale = no new record for ~3 refreshes: the supervisor's
        // hung-vs-dead threshold, at operator granularity.
        const char* state =
            v.frozen_rounds >= 3
                ? "STALE"
                : (v.acc.synced() ? "live" : "live (resyncing)");
        std::printf("%4llu %5u %4u %6llu %9.0f %8.1f %9.1f %4s %13s %6u %6u "
                    "%8u %8.1f %7.1f  %s\n",
                    (unsigned long long)id, s.pid, s.incarnation,
                    (unsigned long long)s.seq, delivered, rate, rtt_p95_ms,
                    nat_label(metric_or(m, "nylon.nat_type")),
                    traversal_cell(m).c_str(), s.quarantined, s.peer_restarts,
                    s.wcl_backlog, static_cast<double>(s.rss_kb) / 1024.0,
                    static_cast<double>(s.cpu_us) / 1e6, state);
      }
      std::printf("fleet: %zu nodes, %.0f delivered, %.1f/s\n", views.size(),
                  fleet_delivered, fleet_rate);
      std::fflush(stdout);
    }

    if (once) break;
    ::usleep(static_cast<useconds_t>((interval > 0.05 ? interval : 1.0) * 1e6));
  }
  return 0;
}

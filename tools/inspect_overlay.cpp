// Diagnostic: boot a testbed and print overlay health every minute —
// exchange success rates, view occupancy, clustering, in-degree by class,
// relay/backlog state. Used to validate PSS convergence behaviour.
#include <cstdio>

#include "pss/metrics.hpp"
#include "whisper/testbed.hpp"

using namespace whisper;

int main(int argc, char** argv) {
  TestbedConfig cfg;
  cfg.initial_nodes = argc > 1 ? static_cast<std::size_t>(std::stoul(argv[1])) : 150;
  cfg.natted_fraction = 0.7;
  cfg.latency = "cluster";
  cfg.node.pss.pi_min_public = argc > 2 ? static_cast<std::size_t>(std::stoul(argv[2])) : 0;
  cfg.seed = 500;
  WhisperTestbed tb(cfg);

  std::uint64_t prev_init = 0, prev_done = 0, prev_timeout = 0;
  for (int minute = 1; minute <= 12; ++minute) {
    tb.run_for(net::kMinute);
    std::uint64_t init = 0, done = 0, timeout = 0;
    double view_fill = 0, view_pub = 0;
    std::size_t relayless = 0, direct_routes = 0;
    for (WhisperNode* n : tb.alive_nodes()) {
      init += n->pss().exchanges_initiated();
      done += n->pss().exchanges_completed();
      timeout += n->pss().exchanges_timed_out();
      view_fill += static_cast<double>(n->pss().view().size());
      view_pub += static_cast<double>(n->pss().view().count_public());
      if (!n->is_public() && n->transport().relay_lost()) ++relayless;
    }
    auto graph = tb.overlay_snapshot();
    Samples clustering = pss::clustering_coefficients(graph);
    auto deg = pss::in_degrees(graph);
    double p_deg = 0, n_deg = 0;
    std::size_t p_count = 0, n_count = 0;
    for (WhisperNode* n : tb.alive_nodes()) {
      if (n->is_public()) {
        p_deg += static_cast<double>(deg[n->id()]);
        ++p_count;
      } else {
        n_deg += static_cast<double>(deg[n->id()]);
        ++n_count;
      }
    }
    std::printf(
        "t=%2dmin init=%llu done=%llu (%.0f%%) timeo=%llu | view fill=%.1f pub=%.1f | "
        "clust=%.3f | indeg P=%.1f N=%.1f | relayless=%zu directs=%zu\n",
        minute, static_cast<unsigned long long>(init - prev_init),
        static_cast<unsigned long long>(done - prev_done),
        init - prev_init > 0
            ? 100.0 * static_cast<double>(done - prev_done) / static_cast<double>(init - prev_init)
            : 0.0,
        static_cast<unsigned long long>(timeout - prev_timeout),
        view_fill / static_cast<double>(tb.alive_count()),
        view_pub / static_cast<double>(tb.alive_count()), clustering.mean(),
        p_count ? p_deg / static_cast<double>(p_count) : 0,
        n_count ? n_deg / static_cast<double>(n_count) : 0, relayless, direct_routes);
    prev_init = init;
    prev_done = done;
    prev_timeout = timeout;
  }
  return 0;
}

// whisper_noded — one real WHISPER node: a full protocol stack on a UDP
// socket, driven by the epoll event loop.
//
//   whisper_noded --dir=RENDEZVOUS --id=I --nodes=N [--timeout=60]
//                 [--seed=7] [--group=1] [--flight=out.jsonl]
//
// Nodes coordinate through the rendezvous directory (shared filesystem —
// the localhost stand-in for a bootstrap service):
//
//   card.I       hex ContactCard, written by node I at boot
//   invite.I     hex (Accreditation + leader RemotePeer), written by the
//                leader (id 1) for each member I
//   member.I     written by member I once its group join completed
//   delivered.I  written by node I when its end of the exchange succeeded:
//                members after receiving the leader's onion-routed pong,
//                the leader after ponging every member
//
// The run: everyone boots and gossips; the leader founds the group and
// writes invitations; members join and send an onion-routed "ping I" to
// the leader, retrying until the leader's "pong I" arrives. Exit 0 iff
// this node's delivered.I was written before the timeout. All file polling
// runs on backend timers — the same wheel the protocol stack uses.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <csignal>
#include <fstream>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/bytes.hpp"
#include "common/serialize.hpp"
#include "telemetry/export.hpp"
#include "telemetry/flight.hpp"
#include "whisper/keypool.hpp"
#include "whisper/realnet.hpp"

using namespace whisper;

namespace {

net::UdpBackend* g_backend = nullptr;

void handle_term(int) {
  if (g_backend != nullptr) g_backend->request_stop();
}

std::string arg_string(int argc, char** argv, const std::string& key,
                       const std::string& fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
  }
  return fallback;
}

std::uint64_t arg_u64(int argc, char** argv, const std::string& key,
                      std::uint64_t fallback) {
  const std::string s = arg_string(argc, argv, key, "");
  if (s.empty()) return fallback;
  return std::strtoull(s.c_str(), nullptr, 10);
}

/// Seconds, tolerating a trailing 's' ("60" and "60s" both work).
std::uint64_t arg_seconds(int argc, char** argv, const std::string& key,
                          std::uint64_t fallback) {
  std::string s = arg_string(argc, argv, key, "");
  if (s.empty()) return fallback;
  if (!s.empty() && (s.back() == 's' || s.back() == 'S')) s.pop_back();
  return std::strtoull(s.c_str(), nullptr, 10);
}

std::optional<Bytes> read_hex_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string hex;
  in >> hex;
  if (hex.empty()) return std::nullopt;
  return from_hex(hex);
}

/// Atomic publish: peers only ever observe complete files.
bool write_hex_file(const std::string& path, BytesView bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) return false;
    out << to_hex(bytes) << "\n";
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

struct Options {
  std::string dir;
  std::uint64_t id = 0;
  std::uint64_t nodes = 0;
  std::uint64_t timeout_s = 60;
  std::uint64_t seed = 7;
  std::uint64_t group = 1;
  std::string flight_path;
};

/// The node's rendezvous-driven state machine, advanced by a 50 ms tick.
struct Orchestrator {
  Options opt;
  net::UdpBackend& backend;
  WhisperNode& node;
  bool is_leader;

  ppss::Ppss* group = nullptr;
  std::optional<wcl::RemotePeer> leader_peer;
  std::unordered_set<std::uint64_t> ponged;  // leader: members answered
  net::Time next_ping_at = 0;
  bool done = false;
  int exit_code = 1;

  std::string path(const std::string& base) const { return opt.dir + "/" + base; }

  void finish(int code) {
    if (done) return;
    done = true;
    exit_code = code;
    // Linger briefly so in-flight ACKs towards peers still flow, then stop.
    backend.schedule_after(500 * net::kMillisecond,
                           [this] { backend.request_stop(); });
  }

  // --- Leader side. ---

  void leader_found_group() {
    crypto::Drbg drbg(opt.seed ^ 0x6e0ded);
    group = &node.create_group(GroupId{opt.group},
                               crypto::RsaKeyPair::generate(512, drbg));
    group->on_app_message = [this](const wcl::RemotePeer& from, BytesView p) {
      leader_on_ping(from, p);
    };
    for (std::uint64_t i = 2; i <= opt.nodes; ++i) {
      auto accreditation = group->invite(NodeId{i});
      if (!accreditation) continue;
      Writer w;
      accreditation->serialize(w);
      group->self_descriptor().serialize(w);
      write_hex_file(path("invite." + std::to_string(i)), w.data());
    }
    std::printf("[noded %llu] group founded, %llu invitations published\n",
                (unsigned long long)opt.id, (unsigned long long)(opt.nodes - 1));
  }

  void leader_on_ping(const wcl::RemotePeer& from, BytesView payload) {
    const std::string text = to_string(payload);
    if (text.rfind("ping ", 0) != 0) return;
    const std::uint64_t member = std::strtoull(text.c_str() + 5, nullptr, 10);
    group->send_app_to(from, to_bytes("pong " + std::to_string(member)));
    if (ponged.insert(member).second) {
      std::printf("[noded %llu] ping from member %llu (%zu/%llu)\n",
                  (unsigned long long)opt.id, (unsigned long long)member,
                  ponged.size(), (unsigned long long)(opt.nodes - 1));
    }
    if (ponged.size() == opt.nodes - 1 && !done) {
      write_hex_file(path("delivered." + std::to_string(opt.id)),
                     to_bytes("pinged-by " + std::to_string(ponged.size())));
      finish(0);
    }
  }

  // --- Member side. ---

  void member_try_join() {
    if (group != nullptr) return;
    auto bytes = read_hex_file(path("invite." + std::to_string(opt.id)));
    if (!bytes) return;
    Reader r(*bytes);
    auto accreditation = ppss::Accreditation::deserialize(r);
    auto leader = wcl::RemotePeer::deserialize(r);
    if (!accreditation || !leader || !r.expect_done()) {
      std::fprintf(stderr, "[noded %llu] malformed invitation\n",
                   (unsigned long long)opt.id);
      return;
    }
    leader_peer = *leader;
    group = &node.join_group(GroupId{opt.group}, *accreditation, *leader);
    group->on_app_message = [this](const wcl::RemotePeer&, BytesView p) {
      member_on_pong(p);
    };
  }

  void member_tick() {
    member_try_join();
    if (group == nullptr || done) return;
    if (!group->joined()) return;
    if (backend.now() < next_ping_at) return;
    // Announce the completed join once, then ping until ponged.
    const std::string member_file = path("member." + std::to_string(opt.id));
    if (next_ping_at == 0) {
      write_hex_file(member_file, to_bytes("joined"));
      std::printf("[noded %llu] joined group, pinging leader\n",
                  (unsigned long long)opt.id);
    }
    group->send_app_to(*leader_peer,
                       to_bytes("ping " + std::to_string(opt.id)));
    next_ping_at = backend.now() + net::kSecond;
  }

  void member_on_pong(BytesView payload) {
    if (done) return;
    const std::string expected = "pong " + std::to_string(opt.id);
    if (to_string(payload) != expected) return;
    write_hex_file(path("delivered." + std::to_string(opt.id)),
                   Bytes(payload.begin(), payload.end()));
    std::printf("[noded %llu] pong received — delivery confirmed\n",
                (unsigned long long)opt.id);
    finish(0);
  }
};

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  opt.dir = arg_string(argc, argv, "dir", "");
  opt.id = arg_u64(argc, argv, "id", 0);
  opt.nodes = arg_u64(argc, argv, "nodes", 0);
  opt.timeout_s = arg_seconds(argc, argv, "timeout", 60);
  opt.seed = arg_u64(argc, argv, "seed", 7);
  opt.group = arg_u64(argc, argv, "group", 1);
  opt.flight_path = arg_string(argc, argv, "flight", "");
  if (opt.dir.empty() || opt.id == 0 || opt.nodes < 2 || opt.id > opt.nodes) {
    std::fprintf(stderr,
                 "usage: whisper_noded --dir=DIR --id=I --nodes=N "
                 "[--timeout=60] [--seed=7] [--group=1] [--flight=out.jsonl]\n"
                 "ids are 1..N; id 1 is the group leader\n");
    return 2;
  }

  net::UdpBackend backend;
  if (!backend.last_error().empty()) {
    std::fprintf(stderr, "backend: %s\n", backend.last_error().c_str());
    return 1;
  }
  g_backend = &backend;
  std::signal(SIGTERM, handle_term);
  std::signal(SIGINT, handle_term);

  telemetry::Registry registry;
  telemetry::Tracer tracer;
  telemetry::FlightRecorder flight;
  tracer.set_clock(net::clock_fn(backend));
  flight.set_clock(net::clock_fn(backend));
  flight.set_enabled(!opt.flight_path.empty());
  backend.set_flight(&flight);

  const auto ep = backend.reserve_endpoint();
  if (!ep) {
    std::fprintf(stderr, "bind: %s\n", backend.last_error().c_str());
    return 1;
  }

  Rng rng(opt.seed ^ (opt.id * 0x9e3779b97f4a7c15ull));
  WhisperNode node(backend, backend, NodeId{opt.id}, *ep, /*is_public=*/true,
                   pooled_keypair(opt.id, realtime_node_config().rsa_bits),
                   realtime_node_config(), rng.fork(),
                   telemetry::Sinks{&registry, &tracer, &flight});
  flight.set_node_resolver([ep, &opt](Endpoint e) {
    return e == *ep ? opt.id : 0ull;
  });

  Orchestrator orch{opt, backend, node, /*is_leader=*/opt.id == 1,
                    nullptr, {}, {}, 0, false, 1};

  // 1. Publish our card, then wait for the full roster before starting:
  //    everyone boots with every peer in reach, like the testbed's
  //    bootstrap handed out by an oracle.
  {
    Writer w;
    node.transport().self_card().serialize(w);
    if (!write_hex_file(orch.path("card." + std::to_string(opt.id)), w.data())) {
      std::fprintf(stderr, "cannot write %s\n",
                   orch.path("card." + std::to_string(opt.id)).c_str());
      return 1;
    }
  }

  bool started = false;
  std::function<void()> boot_poll = [&] {
    if (backend.stop_requested()) return;
    std::vector<pss::ContactCard> bootstrap;
    for (std::uint64_t i = 1; i <= opt.nodes; ++i) {
      if (i == opt.id) continue;
      auto bytes = read_hex_file(orch.path("card." + std::to_string(i)));
      if (!bytes) break;
      Reader r(*bytes);
      bootstrap.push_back(pss::ContactCard::deserialize(r));
    }
    if (bootstrap.size() == opt.nodes - 1) {
      node.start(bootstrap);
      started = true;
      std::printf("[noded %llu] up at %s, %zu bootstrap contacts\n",
                  (unsigned long long)opt.id, ep->str().c_str(),
                  bootstrap.size());
      return;
    }
    backend.schedule_after(50 * net::kMillisecond, boot_poll);
  };
  boot_poll();

  // 2. The orchestration tick: leader founds the group once the substrate
  //    has had a moment to gossip keys; members watch for their invitation.
  const net::Time group_at = 3 * net::kSecond;
  std::function<void()> tick = [&] {
    if (backend.stop_requested()) return;
    if (started) {
      if (orch.is_leader) {
        if (orch.group == nullptr && backend.now() >= group_at) {
          orch.leader_found_group();
        }
      } else {
        orch.member_tick();
      }
    }
    backend.schedule_after(50 * net::kMillisecond, tick);
  };
  tick();

  backend.schedule_after(opt.timeout_s * net::kSecond, [&] {
    if (!orch.done) {
      std::fprintf(stderr, "[noded %llu] timeout\n", (unsigned long long)opt.id);
    }
    backend.request_stop();
  });

  backend.run();
  node.stop();

  if (!opt.flight_path.empty()) {
    const auto records = flight.assemble();
    telemetry::write_text_file(opt.flight_path, telemetry::to_jsonl(records));
    std::printf("[noded %llu] %zu flight records -> %s\n",
                (unsigned long long)opt.id, records.size(),
                opt.flight_path.c_str());
  }
  return orch.done ? orch.exit_code : 1;
}

// whisper_noded — one real WHISPER node: a full protocol stack on a UDP
// socket, driven by the epoll event loop.
//
//   whisper_noded --dir=RENDEZVOUS --id=I --nodes=N [--timeout=60]
//                 [--seed=7] [--group=1] [--flight=out.jsonl]
//                 [--state-dir=DIR] [--linger] [--stats-interval=1]
//                 [--trace-wire] [--epoch=NS]
//
// Nodes coordinate through the rendezvous directory (shared filesystem —
// the localhost stand-in for a bootstrap service):
//
//   card.I       hex ContactCard, written by node I at boot
//   invite.I     hex (Accreditation + leader RemotePeer), written by the
//                leader (id 1) for each member I
//   member.I     written by member I once its group join completed
//   delivered.I  written by node I when its end of the exchange succeeded:
//                members after receiving the leader's onion-routed pong,
//                the leader after ponging every member
//   stats.I      binary health record (telemetry/health.hpp), rewritten
//                atomically every --stats-interval: registry delta/keyframe
//                plus the fixed health header. Doubles as the chaos
//                supervisor's liveness probe (pid / incarnation / seq) and
//                as the scrape source for whisper_localnet / whisper_top.
//   admin.I      decimal UDP port of the node's loopback admin socket;
//                a 4-byte stats request (health.hpp) gets one keyframe
//                health record back.
//
// The run: everyone boots and gossips; the leader founds the group and
// writes invitations; members join and send an onion-routed "ping I" to
// the leader, retrying until the leader's "pong I" arrives. Exit 0 iff
// this node's delivered.I was written before the timeout. All file polling
// runs on backend timers — the same wheel the protocol stack uses.
//
// Crash recovery (DESIGN.md §14): with --state-dir the node persists its
// identity keys, bound endpoint, incarnation and group membership through
// a snapshot+journal store. A restart after kill -9 restores the same node
// id, keys and port, bumps the incarnation (journaled before the first
// frame goes out), resumes its groups from the store, and — as a member —
// re-sends its join request to re-validate its passport with the group.
// --linger keeps the node serving after its own delivery succeeded, so a
// mesh under chaos always has live peers to rejoin through.
//
// Observability (DESIGN.md §15): --trace-wire opts into version-2 UDP
// frames that carry the TraceContext, so flight events recorded here pair
// with the sender's and whisper_trace can merge per-process event exports
// (written beside --flight as <out>.events.jsonl) into cross-process
// per-hop decompositions. --epoch=NS shares one CLOCK_MONOTONIC zero
// across the fleet so those timestamps are directly comparable. Status
// lines go to stderr as structured JSONL (telemetry/log.hpp).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <csignal>
#include <fstream>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/bytes.hpp"
#include "common/serialize.hpp"
#include "nat/rules.hpp"
#include "net/shim.hpp"
#include "store/journal.hpp"
#include "store/state.hpp"
#include "telemetry/export.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/health.hpp"
#include "telemetry/log.hpp"
#include "whisper/keypool.hpp"
#include "whisper/realnet.hpp"

using namespace whisper;

namespace {

net::UdpBackend* g_backend = nullptr;

void handle_term(int) {
  if (g_backend != nullptr) g_backend->request_stop();
}

std::string arg_string(int argc, char** argv, const std::string& key,
                       const std::string& fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
  }
  return fallback;
}

bool arg_flag(int argc, char** argv, const std::string& key) {
  const std::string flag = "--" + key;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

std::uint64_t arg_u64(int argc, char** argv, const std::string& key,
                      std::uint64_t fallback) {
  const std::string s = arg_string(argc, argv, key, "");
  if (s.empty()) return fallback;
  return std::strtoull(s.c_str(), nullptr, 10);
}

/// Seconds, tolerating a trailing 's' ("60" and "60s" both work).
std::uint64_t arg_seconds(int argc, char** argv, const std::string& key,
                          std::uint64_t fallback) {
  std::string s = arg_string(argc, argv, key, "");
  if (s.empty()) return fallback;
  if (!s.empty() && (s.back() == 's' || s.back() == 'S')) s.pop_back();
  return std::strtoull(s.c_str(), nullptr, 10);
}

/// Fractional seconds ("0.25", "1", "2s") as microseconds.
net::Time arg_interval_us(int argc, char** argv, const std::string& key,
                          net::Time fallback_us) {
  std::string s = arg_string(argc, argv, key, "");
  if (s.empty()) return fallback_us;
  if (s.back() == 's' || s.back() == 'S') s.pop_back();
  const double v = std::strtod(s.c_str(), nullptr);
  if (v <= 0) return fallback_us;
  return static_cast<net::Time>(v * 1e6);
}

std::optional<Bytes> read_hex_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string hex;
  in >> hex;
  if (hex.empty()) return std::nullopt;
  return from_hex(hex);
}

/// Atomic publish: peers only ever observe complete files.
bool write_text_file_atomic(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) return false;
    out << text;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

bool write_hex_file(const std::string& path, BytesView bytes) {
  return write_text_file_atomic(path, to_hex(bytes) + "\n");
}

/// Resident set from /proc/self/statm, in KiB (0 when unreadable).
std::uint64_t read_rss_kb() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long vsz = 0, rss_pages = 0;
  const int rc = std::fscanf(f, "%llu %llu", &vsz, &rss_pages);
  std::fclose(f);
  if (rc != 2) return 0;
  const long page = ::sysconf(_SC_PAGESIZE);
  return rss_pages * static_cast<std::uint64_t>(page > 0 ? page : 4096) / 1024;
}

/// Non-blocking loopback UDP socket on an OS-assigned port, for the admin
/// stats endpoint. Returns the fd (or -1) and fills `port`.
int open_admin_socket(std::uint16_t* port) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  socklen_t len = sizeof addr;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), len) != 0 ||
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return -1;
  }
  *port = ntohs(addr.sin_port);
  return fd;
}

struct Options {
  std::string dir;
  std::uint64_t id = 0;
  std::uint64_t nodes = 0;
  std::uint64_t timeout_s = 60;
  std::uint64_t seed = 7;
  std::uint64_t group = 1;
  std::string flight_path;
  std::string state_dir;
  bool linger = false;
  net::Time stats_interval = net::kSecond;
  bool trace_wire = false;
  std::int64_t epoch_ns = -1;
  nat::NatType nat = nat::NatType::kNone;
  net::ImpairConfig impair;
  net::Time nat_lease = 0;  // 0 = rules-engine default
};

/// The emulated NAT device's public IP: a distinct loopback address per
/// node id (all of 127/8 is host-local), so restricted-cone IP filtering
/// discriminates between peers instead of collapsing onto 127.0.0.1.
std::uint32_t device_ip_for(std::uint64_t id) {
  return 0x7F010000u + static_cast<std::uint32_t>(id & 0xFFFF);
}

/// A natted node's internal endpoint: never bound, never on the wire —
/// traffic enters and leaves through the shim's per-mapping sockets. The
/// 10/8 address keeps it visibly distinct from real loopback binds.
Endpoint internal_ep_for(std::uint64_t id) {
  return Endpoint{0x0A000000u + static_cast<std::uint32_t>(id & 0xFFFF), 40000};
}

/// Epoch history in the form Ppss::resume and the store share.
std::vector<std::pair<std::uint64_t, crypto::RsaPublicKey>> collect_epochs(
    const ppss::GroupKeyring& keyring) {
  std::vector<std::pair<std::uint64_t, crypto::RsaPublicKey>> out;
  for (std::uint64_t e = 1; e <= keyring.latest_epoch(); ++e) {
    if (auto key = keyring.key_for(e)) out.emplace_back(e, *key);
  }
  return out;
}

/// The node's rendezvous-driven state machine, advanced by a 50 ms tick.
struct Orchestrator {
  Options opt;
  net::UdpBackend& backend;
  WhisperNode& node;
  bool is_leader;
  store::NodeStateStore* store = nullptr;  // null without --state-dir
  telemetry::Logger& log;
  telemetry::Registry& registry;
  net::ShimStack* shim = nullptr;  // null without --nat/--impair

  ppss::Ppss* group = nullptr;
  std::optional<wcl::RemotePeer> leader_peer = std::nullopt;
  std::optional<ppss::Accreditation> accreditation = std::nullopt;
  std::optional<crypto::RsaKeyPair> group_secret = std::nullopt;  // leader only
  std::unordered_set<std::uint64_t> ponged = {};  // leader: members answered
  net::Time next_ping_at = 0;
  bool announced_join = false;
  bool persisted_membership = false;
  bool done = false;
  int exit_code = 1;
  telemetry::HealthExporter exporter = telemetry::HealthExporter{};
  net::Time boot_at = 0;
  int admin_fd = -1;

  std::string path(const std::string& base) const { return opt.dir + "/" + base; }

  void finish(int code) {
    if (done) return;
    done = true;
    exit_code = code;
    if (opt.linger) return;  // keep serving: chaos peers rejoin through us
    // Linger briefly so in-flight ACKs towards peers still flow, then stop.
    backend.schedule_after(500 * net::kMillisecond,
                           [this] { backend.request_stop(); });
  }

  /// Fold the traversal/shim/socket counters that live outside the registry
  /// into it as gauges, so every export path (stats file, admin reply)
  /// carries them. Called from snapshot() — both paths go through it.
  void refresh_net_metrics() {
    const auto& t = node.transport();
    registry.gauge("udp.rx_kernel_drops")
        .set(static_cast<double>(backend.rx_kernel_drops()));
    registry.gauge("nylon.nat_type")
        .set(static_cast<double>(static_cast<int>(opt.nat)));
    registry.gauge("nylon.registered").set(t.registered() ? 1 : 0);
    registry.gauge("nylon.sends.direct").set(static_cast<double>(t.sends_direct()));
    registry.gauge("nylon.sends.punched").set(static_cast<double>(t.sends_punched()));
    registry.gauge("nylon.sends.relayed").set(static_cast<double>(t.sends_relayed()));
    registry.gauge("nylon.probes.sent").set(static_cast<double>(t.probes_sent()));
    registry.gauge("nylon.probes.retries").set(static_cast<double>(t.probe_retries()));
    registry.gauge("nylon.routes.direct")
        .set(static_cast<double>(t.direct_route_count()));
    registry.gauge("nylon.routes.invalidated")
        .set(static_cast<double>(t.routes_invalidated()));
    if (shim != nullptr) {
      registry.gauge("shim.impair.dropped")
          .set(static_cast<double>(shim->impair_dropped()));
      registry.gauge("shim.impair.duplicated")
          .set(static_cast<double>(shim->impair_duplicated()));
      registry.gauge("shim.impair.delayed")
          .set(static_cast<double>(shim->impair_delayed()));
      registry.gauge("shim.rate.dropped")
          .set(static_cast<double>(shim->rate_dropped()));
      registry.gauge("shim.nat.filtered")
          .set(static_cast<double>(shim->nat_filtered()));
      registry.gauge("shim.nat.mappings")
          .set(static_cast<double>(shim->nat_mappings_created()));
      registry.gauge("shim.nat.active")
          .set(static_cast<double>(shim->mappings_active()));
      registry.gauge("shim.nat.expired")
          .set(static_cast<double>(shim->nat_expired()));
      registry.gauge("shim.nat.reboots")
          .set(static_cast<double>(shim->nat_reboots()));
    }
  }

  /// The fixed health header: what the supervisor's hung-vs-dead probe and
  /// the fleet aggregator read from every record, keyframe or delta.
  telemetry::HealthSnapshot snapshot() {
    refresh_net_metrics();
    telemetry::HealthSnapshot s;
    s.node = opt.id;
    s.pid = static_cast<std::uint32_t>(::getpid());
    s.incarnation = node.transport().incarnation();
    s.now_us = static_cast<std::uint64_t>(backend.now());
    s.uptime_us = static_cast<std::uint64_t>(backend.now() - boot_at);
    s.groups = static_cast<std::uint32_t>(node.group_count());
    s.wcl_backlog = static_cast<std::uint32_t>(node.wcl().backlog().size());
    s.pending_forwards =
        static_cast<std::uint32_t>(node.wcl().pending_forward_count());
    s.pss_view = static_cast<std::uint32_t>(node.pss().view().size());
    s.pss_reserve = static_cast<std::uint32_t>(node.pss().reserve_size());
    s.quarantined = static_cast<std::uint32_t>(node.pss().peers_quarantined());
    s.peer_restarts = static_cast<std::uint32_t>(node.transport().peer_restarts());
    s.decode_rejects = static_cast<std::uint32_t>(
        node.transport().decode_rejects() + node.pss().decode_rejects() +
        node.wcl().stats().decode_rejects);
    s.rate_limited = static_cast<std::uint32_t>(node.pss().rate_limited() +
                                                node.wcl().stats().rate_limited);
    s.rss_kb = read_rss_kb();
    s.cpu_us = static_cast<std::uint64_t>(node.cpu().total());
    return s;
  }

  /// Stats publisher: the versioned delta/keyframe record replaces the old
  /// "pid inc seq" heartbeat text file wholesale — same cadence contract
  /// (supervisor treats a stale seq from a live pid as hung), richer body.
  void publish_stats() {
    const Bytes rec = exporter.next(snapshot());
    std::string err;
    if (!store::atomic_publish_file(path("stats." + std::to_string(opt.id)), rec,
                                  &err)) {
      log.warn("stats_write_failed", {{"error", err}});
    }
    backend.schedule_after(opt.stats_interval, [this] { publish_stats(); });
  }

  /// Admin endpoint: drain pending requests, answer each with one keyframe
  /// record (full registry — an admin scrape must not depend on the file
  /// stream's delta chain). Served off the tick wheel; sub-50 ms latency is
  /// plenty for an operator tool.
  void admin_poll() {
    for (;;) {
      std::uint8_t buf[64];
      sockaddr_in from{};
      socklen_t from_len = sizeof from;
      const ssize_t n =
          ::recvfrom(admin_fd, buf, sizeof buf, 0,
                     reinterpret_cast<sockaddr*>(&from), &from_len);
      if (n < 0) break;
      const auto op = telemetry::decode_admin_request(
          BytesView(buf, static_cast<std::size_t>(n)));
      if (!op) continue;
      if (*op == telemetry::AdminOp::kNatReboot) {
        // Chaos event: the emulated NAT in front of this node power-cycles.
        // Every mapping (and its socket) dies; recovery is the protocol's
        // job — re-register through fresh mappings, re-punch routes.
        const std::size_t dropped = shim != nullptr ? shim->nat_reboot() : 0;
        log.warn("nat_reboot", {{"mappings_dropped", (unsigned long long)dropped}});
      }
      telemetry::HealthSnapshot snap = snapshot();
      snap.seq = exporter.seq();
      snap.keyframe = true;
      snap.metrics = telemetry::registry_values(registry);
      const Bytes reply = telemetry::encode_health_record(snap);
      (void)::sendto(admin_fd, reply.data(), reply.size(), 0,
                     reinterpret_cast<sockaddr*>(&from), from_len);
    }
    backend.schedule_after(50 * net::kMillisecond, [this] { admin_poll(); });
  }

  /// Journal the current group membership (leader secret included).
  void persist_group() {
    if (store == nullptr || group == nullptr) return;
    store::StoredGroup sg;
    sg.group = GroupId{opt.group};
    sg.is_leader = is_leader;
    sg.epochs = collect_epochs(group->keyring());
    sg.passport = group->passport();
    if (is_leader) sg.group_key = group_secret;
    sg.accreditation = accreditation;
    sg.entry_point = leader_peer;
    store->record_group(sg);
  }

  /// Boot-from-state: re-instantiate persisted group membership. Leaders
  /// come back with the group key; members resume their passport and then
  /// re-join with the stored accreditation — the proof-of-life /
  /// passport-re-validation pass the group demands of a returning member.
  void resume_from_store() {
    if (store == nullptr || !store->has_state()) return;
    store::StoredGroup* sg = store->state().find_group(GroupId{opt.group});
    if (sg == nullptr) return;
    if (is_leader && sg->group_key) {
      group_secret = sg->group_key;
      group = &node.resume_group(sg->group, sg->epochs, sg->passport, sg->group_key);
      if (!group->is_leader()) {
        // Inconsistent store (key does not match the recorded epochs):
        // fall back to founding fresh via the normal tick path.
        log.warn("stored_group_key_rejected");
        group = nullptr;
        return;
      }
      group->on_app_message = [this](const wcl::RemotePeer& from, BytesView p) {
        leader_on_ping(from, p);
      };
      log.info("group_resumed",
               {{"epoch", (unsigned long long)group->leader_epoch()}});
      return;
    }
    if (!is_leader) {
      accreditation = sg->accreditation;
      leader_peer = sg->entry_point;
      group = &node.resume_group(sg->group, sg->epochs, sg->passport);
      group->on_app_message = [this](const wcl::RemotePeer&, BytesView p) {
        member_on_pong(p);
      };
      log.info("membership_resumed",
               {{"passport", group->joined() ? "restored" : "pending-rejoin"}});
      // Re-validate with the group even when the stored passport verified:
      // the join response refreshes the key history and view, and tells the
      // leader this incarnation is alive.
      if (accreditation && leader_peer) group->join(*accreditation, *leader_peer);
    }
  }

  // --- Leader side. ---

  void leader_found_group() {
    crypto::Drbg drbg(opt.seed ^ 0x6e0ded);
    crypto::RsaKeyPair group_key = crypto::RsaKeyPair::generate(512, drbg);
    group_secret = group_key;
    group = &node.create_group(GroupId{opt.group}, std::move(group_key));
    group->on_app_message = [this](const wcl::RemotePeer& from, BytesView p) {
      leader_on_ping(from, p);
    };
    for (std::uint64_t i = 2; i <= opt.nodes; ++i) {
      auto invite = group->invite(NodeId{i});
      if (!invite) continue;
      Writer w;
      invite->serialize(w);
      group->self_descriptor().serialize(w);
      write_hex_file(path("invite." + std::to_string(i)), w.data());
    }
    persist_group();
    log.info("group_founded",
             {{"invitations", (unsigned long long)(opt.nodes - 1)}});
  }

  void leader_on_ping(const wcl::RemotePeer& from, BytesView payload) {
    const std::string text = to_string(payload);
    if (text.rfind("ping ", 0) != 0) return;
    const std::uint64_t member = std::strtoull(text.c_str() + 5, nullptr, 10);
    group->send_app_to(from, to_bytes("pong " + std::to_string(member)));
    if (ponged.insert(member).second) {
      log.info("ping", {{"member", (unsigned long long)member},
                        {"answered", (unsigned long long)ponged.size()},
                        {"expected", (unsigned long long)(opt.nodes - 1)}});
    }
    if (ponged.size() == opt.nodes - 1 && !done) {
      write_hex_file(path("delivered." + std::to_string(opt.id)),
                     to_bytes("pinged-by " + std::to_string(ponged.size())));
      finish(0);
    }
  }

  // --- Member side. ---

  void member_try_join() {
    if (group != nullptr) return;
    auto bytes = read_hex_file(path("invite." + std::to_string(opt.id)));
    if (!bytes) return;
    Reader r(*bytes);
    auto invite = ppss::Accreditation::deserialize(r);
    auto leader = wcl::RemotePeer::deserialize(r);
    if (!invite || !leader || !r.expect_done()) {
      log.warn("invite_malformed");
      return;
    }
    accreditation = *invite;
    leader_peer = *leader;
    group = &node.join_group(GroupId{opt.group}, *invite, *leader);
    group->on_app_message = [this](const wcl::RemotePeer&, BytesView p) {
      member_on_pong(p);
    };
    // Journal the invitation immediately: a crash between here and the join
    // response must not lose the ability to rejoin.
    persist_group();
  }

  void member_tick() {
    member_try_join();
    if (group == nullptr) return;
    if (!group->joined()) return;
    if (!announced_join) {
      announced_join = true;
      write_hex_file(path("member." + std::to_string(opt.id)), to_bytes("joined"));
      log.info("joined");
    }
    if (!persisted_membership && !group->passport().signature.empty()) {
      persisted_membership = true;
      persist_group();  // now with the granted passport + key history
    }
    if (done && !opt.linger) return;
    if (backend.now() < next_ping_at) return;
    // Ping until ponged; lingering nodes keep a slow liveness ping going so
    // a restarted leader can re-collect the full roster.
    group->send_app_to(*leader_peer,
                       to_bytes("ping " + std::to_string(opt.id)));
    next_ping_at = backend.now() + (done ? 2 * net::kSecond : net::kSecond);
  }

  void member_on_pong(BytesView payload) {
    const std::string expected = "pong " + std::to_string(opt.id);
    if (to_string(payload) != expected) return;
    // Rewrite the receipt even after the first delivery: the natreboot
    // chaos gate unlinks delivered.I and requires the (lingering) victim to
    // re-earn it through the rebooted NAT's fresh mappings.
    write_hex_file(path("delivered." + std::to_string(opt.id)),
                   Bytes(payload.begin(), payload.end()));
    if (done) return;
    log.info("delivered");
    finish(0);
  }
};

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  opt.dir = arg_string(argc, argv, "dir", "");
  opt.id = arg_u64(argc, argv, "id", 0);
  opt.nodes = arg_u64(argc, argv, "nodes", 0);
  opt.timeout_s = arg_seconds(argc, argv, "timeout", 60);
  opt.seed = arg_u64(argc, argv, "seed", 7);
  opt.group = arg_u64(argc, argv, "group", 1);
  opt.flight_path = arg_string(argc, argv, "flight", "");
  opt.state_dir = arg_string(argc, argv, "state-dir", "");
  opt.linger = arg_flag(argc, argv, "linger");
  opt.stats_interval = arg_interval_us(argc, argv, "stats-interval", net::kSecond);
  opt.trace_wire = arg_flag(argc, argv, "trace-wire");
  const std::string epoch_s = arg_string(argc, argv, "epoch", "");
  if (!epoch_s.empty()) {
    opt.epoch_ns =
        static_cast<std::int64_t>(std::strtoull(epoch_s.c_str(), nullptr, 10));
  }
  const std::string nat_s = arg_string(argc, argv, "nat", "");
  if (!nat_s.empty()) {
    const auto type = nat::nat_type_from_name(nat_s);
    if (!type) {
      std::fprintf(stderr, "whisper_noded: unknown NAT type '%s'\n", nat_s.c_str());
      return 2;
    }
    opt.nat = *type;
  }
  const std::string impair_s = arg_string(argc, argv, "impair", "");
  if (!impair_s.empty()) {
    std::string err;
    const auto impair = net::parse_impair(impair_s, &err);
    if (!impair) {
      std::fprintf(stderr, "whisper_noded: %s\n", err.c_str());
      return 2;
    }
    opt.impair = *impair;
  }
  opt.nat_lease = arg_interval_us(argc, argv, "nat-lease", 0);
  if (opt.dir.empty() || opt.id == 0 || opt.nodes < 2 || opt.id > opt.nodes) {
    std::fprintf(stderr,
                 "usage: whisper_noded --dir=DIR --id=I --nodes=N "
                 "[--timeout=60] [--seed=7] [--group=1] [--flight=out.jsonl]\n"
                 "       [--state-dir=DIR] [--linger] [--stats-interval=SECS]\n"
                 "       [--trace-wire] [--epoch=NS] [--nat=TYPE] "
                 "[--impair=SPEC] [--nat-lease=SECS]\n"
                 "ids are 1..N; id 1 is the group leader\n"
                 "NAT types: public full_cone restricted_cone "
                 "port_restricted_cone symmetric\n"
                 "impair: loss:F,dup:F,reorder:F,delay:DUR~DUR,rate:N[km]bps\n");
    return 2;
  }

  telemetry::Logger logger;
  logger.set_node(opt.id);

  net::UdpConfig bcfg;
  bcfg.trace_wire = opt.trace_wire;
  bcfg.epoch_ns = opt.epoch_ns;
  net::UdpBackend backend(bcfg);
  if (!backend.last_error().empty()) {
    logger.error("backend", {{"error", backend.last_error()}});
    return 1;
  }
  logger.set_clock(
      [&backend] { return static_cast<std::uint64_t>(backend.now()); });
  g_backend = &backend;
  std::signal(SIGTERM, handle_term);
  std::signal(SIGINT, handle_term);

  // Durable state: open before anything touches the network. A boot from
  // existing state bumps the incarnation and journals the bump (fsync'd)
  // BEFORE the first frame goes out — peers must never see two lives of
  // this node under one epoch.
  store::NodeStateStore store;
  store::NodeStateStore* storep = nullptr;
  bool restored = false;
  if (!opt.state_dir.empty()) {
    if (!store.open(opt.state_dir)) {
      logger.error("state_store", {{"error", store.last_error()}});
      return 1;
    }
    storep = &store;
    restored = store.has_state();
    if (restored && store.state().id != NodeId{opt.id}) {
      logger.error("state_dir_mismatch",
                   {{"owner", (unsigned long long)store.state().id.value}});
      return 1;
    }
  }

  telemetry::Registry registry;
  telemetry::Tracer tracer;
  telemetry::FlightRecorder flight;
  tracer.set_clock(net::clock_fn(backend));
  flight.set_clock(net::clock_fn(backend));
  flight.set_enabled(!opt.flight_path.empty() || opt.trace_wire);
  // Namespace trace ids per process so merged cross-process event streams
  // never collide (same scheme as the sharded engine's per-shard bases).
  flight.set_id_base(opt.id << 48);
  backend.set_flight(&flight);

  const bool natted = opt.nat != nat::NatType::kNone;
  Endpoint ep;
  if (natted) {
    // The internal endpoint is synthetic and deterministic per id: it never
    // goes on the wire (the shim's mapping sockets do), so there is nothing
    // to bind and nothing for a restart to re-bind.
    ep = internal_ep_for(opt.id);
    if (restored) {
      store::NodeState& st = store.state();
      st.incarnation += 1;
      if (!store.record_incarnation(st.incarnation)) {
        logger.error("incarnation_journal", {{"error", store.last_error()}});
        return 1;
      }
      logger.info("restart_from_state",
                  {{"incarnation", st.incarnation}, {"ep", ep.str()}});
    } else if (storep != nullptr) {
      store::NodeState& st = store.state();
      st.id = NodeId{opt.id};
      st.is_public = false;
      st.endpoint = ep;
      st.incarnation = 1;
      st.identity = pooled_keypair(opt.id, realtime_node_config().rsa_bits);
      if (!store.commit_snapshot()) {
        logger.error("snapshot", {{"error", store.last_error()}});
        return 1;
      }
    }
  } else if (restored) {
    store::NodeState& st = store.state();
    st.incarnation += 1;
    if (!store.record_incarnation(st.incarnation)) {
      logger.error("incarnation_journal", {{"error", store.last_error()}});
      return 1;
    }
    // Re-bind the persisted port so peers' contact cards stay valid. The
    // placeholder handler is replaced when the transport attaches.
    backend.attach(st.endpoint, [](const net::Datagram&) {});
    if (backend.attached(st.endpoint)) {
      ep = st.endpoint;
    } else {
      // Port still held (e.g. a SIGSTOP'd predecessor): take a fresh one
      // and persist it; peers relearn the address through PSS gossip.
      const auto fresh = backend.reserve_endpoint();
      if (!fresh) {
        logger.error("bind", {{"error", backend.last_error()}});
        return 1;
      }
      ep = *fresh;
      st.endpoint = ep;
      store.commit_snapshot();
      logger.warn("port_rebound", {{"ep", ep.str()}});
    }
    logger.info("restart_from_state",
                {{"incarnation", st.incarnation}, {"ep", ep.str()}});
  } else {
    const auto fresh = backend.reserve_endpoint();
    if (!fresh) {
      logger.error("bind", {{"error", backend.last_error()}});
      return 1;
    }
    ep = *fresh;
    if (storep != nullptr) {
      store::NodeState& st = store.state();
      st.id = NodeId{opt.id};
      st.is_public = true;
      st.endpoint = ep;
      st.incarnation = 1;
      st.identity = pooled_keypair(opt.id, realtime_node_config().rsa_bits);
      if (!store.commit_snapshot()) {
        logger.error("snapshot", {{"error", store.last_error()}});
        return 1;
      }
    }
  }

  // NAT/impairment interposer (DESIGN.md §16): the protocol stack talks to
  // the shim, the shim talks to the backend. Absent --nat/--impair the shim
  // is not even constructed — the UDP path is byte-identical to before.
  std::unique_ptr<net::ShimStack> shim;
  std::ofstream shim_log;
  net::Stack* stack = &backend;
  if (natted || opt.impair.any()) {
    net::ShimConfig scfg;
    scfg.seed = opt.seed ^ (opt.id * 0x9e3779b97f4a7c15ull);
    if (opt.nat_lease > 0) scfg.nat.lease = opt.nat_lease;
    scfg.reserve = [&backend](std::uint32_t bind_ip) {
      return backend.reserve_endpoint_on(bind_ip);
    };
    shim = std::make_unique<net::ShimStack>(backend, backend, std::move(scfg));
    net::ShimProfile profile;
    profile.nat = opt.nat;
    profile.device_ip = device_ip_for(opt.id);
    profile.impair = opt.impair;
    shim->set_profile(ep, profile);
    shim_log.open(opt.dir + "/shim." + std::to_string(opt.id) + ".jsonl",
                  std::ios::app);
    if (shim_log.is_open()) {
      shim->set_event_sink([&shim_log](const net::ShimEvent& ev) {
        shim_log << net::shim_event_json(ev) << "\n";
      });
    }
    stack = shim.get();
    logger.info("shim", {{"nat", nat::nat_type_name(opt.nat)},
                         {"device_ip", Endpoint{profile.device_ip, 0}.str()}});
  }

  NodeConfig cfg = realtime_node_config();
  // Identity: from the store when persistent (identical keys across
  // restarts — that IS the recovery claim), from the pool otherwise.
  const crypto::RsaKeyPair identity =
      storep != nullptr ? store.state().identity : pooled_keypair(opt.id, cfg.rsa_bits);
  cfg.incarnation = storep != nullptr ? store.state().incarnation : 0;

  Rng rng(opt.seed ^ (opt.id * 0x9e3779b97f4a7c15ull));
  WhisperNode node(backend, *stack, NodeId{opt.id}, ep, /*is_public=*/!natted,
                   identity, cfg, rng.fork(),
                   telemetry::Sinks{&registry, &tracer, &flight});
  flight.set_node_resolver([ep, &opt](Endpoint e) {
    return e == ep ? opt.id : 0ull;
  });

  Orchestrator orch{opt,    backend, node, /*is_leader=*/opt.id == 1,
                    storep, logger,  registry};
  orch.shim = shim.get();
  orch.exporter = telemetry::HealthExporter(&registry);
  orch.boot_at = backend.now();
  orch.publish_stats();

  // Admin stats endpoint: loopback UDP socket, port published via the
  // rendezvous dir; serviced off the timer wheel.
  std::uint16_t admin_port = 0;
  orch.admin_fd = open_admin_socket(&admin_port);
  if (orch.admin_fd >= 0) {
    write_text_file_atomic(orch.path("admin." + std::to_string(opt.id)),
                           std::to_string(admin_port) + "\n");
    orch.admin_poll();
  } else {
    logger.warn("admin_socket_failed");
  }

  // 1. Publish our card, then wait for the full roster before starting:
  //    everyone boots with every peer in reach, like the testbed's
  //    bootstrap handed out by an oracle.
  {
    Writer w;
    node.transport().self_card().serialize(w);
    if (!write_hex_file(orch.path("card." + std::to_string(opt.id)), w.data())) {
      logger.error("card_write_failed",
                   {{"path", orch.path("card." + std::to_string(opt.id))}});
      return 1;
    }
  }

  bool started = false;
  std::function<void()> boot_poll = [&] {
    if (backend.stop_requested()) return;
    std::vector<pss::ContactCard> bootstrap;
    for (std::uint64_t i = 1; i <= opt.nodes; ++i) {
      if (i == opt.id) continue;
      auto bytes = read_hex_file(orch.path("card." + std::to_string(i)));
      if (!bytes) break;
      Reader r(*bytes);
      bootstrap.push_back(pss::ContactCard::deserialize(r));
    }
    if (bootstrap.size() == opt.nodes - 1) {
      node.start(bootstrap);
      started = true;
      if (storep != nullptr) store.record_peer_hints(bootstrap);
      // Re-announce into PSS happened via start(); now resurrect group
      // membership and (members) kick off the passport re-validation.
      orch.resume_from_store();
      logger.info("up", {{"ep", ep.str()},
                         {"bootstrap", (unsigned long long)bootstrap.size()},
                         {"recovered", restored}});
      return;
    }
    backend.schedule_after(50 * net::kMillisecond, boot_poll);
  };
  boot_poll();

  // 2. The orchestration tick: leader founds the group once the substrate
  //    has had a moment to gossip keys; members watch for their invitation.
  const net::Time group_at = 3 * net::kSecond;
  std::function<void()> tick = [&] {
    if (backend.stop_requested()) return;
    if (started) {
      if (orch.is_leader) {
        if (orch.group == nullptr && backend.now() >= group_at) {
          orch.leader_found_group();
        }
      } else {
        orch.member_tick();
      }
    }
    backend.schedule_after(50 * net::kMillisecond, tick);
  };
  tick();

  backend.schedule_after(opt.timeout_s * net::kSecond, [&] {
    if (!orch.done) logger.warn("timeout");
    backend.request_stop();
  });

  backend.run();
  node.stop();

  // One final record so post-mortem scrapes see the exit-time counters.
  orch.publish_stats();
  if (orch.admin_fd >= 0) ::close(orch.admin_fd);

  if (!opt.flight_path.empty()) {
    const auto records = flight.assemble();
    telemetry::write_text_file(opt.flight_path, telemetry::to_jsonl(records));
    // Raw per-process events beside the records: the cross-process merge
    // input for `whisper_trace summary a.events.jsonl b.events.jsonl ...`.
    std::string events_path = opt.flight_path;
    const std::string ext = ".jsonl";
    if (events_path.size() > ext.size() &&
        events_path.compare(events_path.size() - ext.size(), ext.size(), ext) == 0) {
      events_path.resize(events_path.size() - ext.size());
    }
    events_path += ".events.jsonl";
    telemetry::write_text_file(events_path,
                               telemetry::to_events_jsonl(flight.events()));
    logger.info("flight_export", {{"records", (unsigned long long)records.size()},
                                  {"path", opt.flight_path}});
  }
  return orch.done ? orch.exit_code : 1;
}

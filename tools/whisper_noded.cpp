// whisper_noded — one real WHISPER node: a full protocol stack on a UDP
// socket, driven by the epoll event loop.
//
//   whisper_noded --dir=RENDEZVOUS --id=I --nodes=N [--timeout=60]
//                 [--seed=7] [--group=1] [--flight=out.jsonl]
//                 [--state-dir=DIR] [--linger]
//
// Nodes coordinate through the rendezvous directory (shared filesystem —
// the localhost stand-in for a bootstrap service):
//
//   card.I       hex ContactCard, written by node I at boot
//   invite.I     hex (Accreditation + leader RemotePeer), written by the
//                leader (id 1) for each member I
//   member.I     written by member I once its group join completed
//   delivered.I  written by node I when its end of the exchange succeeded:
//                members after receiving the leader's onion-routed pong,
//                the leader after ponging every member
//   hb.I         heartbeat, rewritten every 500 ms: "pid inc seq" — the
//                chaos supervisor's liveness probe (a live pid with a
//                stale heartbeat is hung, not dead)
//
// The run: everyone boots and gossips; the leader founds the group and
// writes invitations; members join and send an onion-routed "ping I" to
// the leader, retrying until the leader's "pong I" arrives. Exit 0 iff
// this node's delivered.I was written before the timeout. All file polling
// runs on backend timers — the same wheel the protocol stack uses.
//
// Crash recovery (DESIGN.md §14): with --state-dir the node persists its
// identity keys, bound endpoint, incarnation and group membership through
// a snapshot+journal store. A restart after kill -9 restores the same node
// id, keys and port, bumps the incarnation (journaled before the first
// frame goes out), resumes its groups from the store, and — as a member —
// re-sends its join request to re-validate its passport with the group.
// --linger keeps the node serving after its own delivery succeeded, so a
// mesh under chaos always has live peers to rejoin through.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <csignal>
#include <fstream>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include <unistd.h>

#include "common/bytes.hpp"
#include "common/serialize.hpp"
#include "store/state.hpp"
#include "telemetry/export.hpp"
#include "telemetry/flight.hpp"
#include "whisper/keypool.hpp"
#include "whisper/realnet.hpp"

using namespace whisper;

namespace {

net::UdpBackend* g_backend = nullptr;

void handle_term(int) {
  if (g_backend != nullptr) g_backend->request_stop();
}

std::string arg_string(int argc, char** argv, const std::string& key,
                       const std::string& fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
  }
  return fallback;
}

bool arg_flag(int argc, char** argv, const std::string& key) {
  const std::string flag = "--" + key;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

std::uint64_t arg_u64(int argc, char** argv, const std::string& key,
                      std::uint64_t fallback) {
  const std::string s = arg_string(argc, argv, key, "");
  if (s.empty()) return fallback;
  return std::strtoull(s.c_str(), nullptr, 10);
}

/// Seconds, tolerating a trailing 's' ("60" and "60s" both work).
std::uint64_t arg_seconds(int argc, char** argv, const std::string& key,
                          std::uint64_t fallback) {
  std::string s = arg_string(argc, argv, key, "");
  if (s.empty()) return fallback;
  if (!s.empty() && (s.back() == 's' || s.back() == 'S')) s.pop_back();
  return std::strtoull(s.c_str(), nullptr, 10);
}

std::optional<Bytes> read_hex_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string hex;
  in >> hex;
  if (hex.empty()) return std::nullopt;
  return from_hex(hex);
}

/// Atomic publish: peers only ever observe complete files.
bool write_text_file_atomic(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) return false;
    out << text;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

bool write_hex_file(const std::string& path, BytesView bytes) {
  return write_text_file_atomic(path, to_hex(bytes) + "\n");
}

struct Options {
  std::string dir;
  std::uint64_t id = 0;
  std::uint64_t nodes = 0;
  std::uint64_t timeout_s = 60;
  std::uint64_t seed = 7;
  std::uint64_t group = 1;
  std::string flight_path;
  std::string state_dir;
  bool linger = false;
};

/// Epoch history in the form Ppss::resume and the store share.
std::vector<std::pair<std::uint64_t, crypto::RsaPublicKey>> collect_epochs(
    const ppss::GroupKeyring& keyring) {
  std::vector<std::pair<std::uint64_t, crypto::RsaPublicKey>> out;
  for (std::uint64_t e = 1; e <= keyring.latest_epoch(); ++e) {
    if (auto key = keyring.key_for(e)) out.emplace_back(e, *key);
  }
  return out;
}

/// The node's rendezvous-driven state machine, advanced by a 50 ms tick.
struct Orchestrator {
  Options opt;
  net::UdpBackend& backend;
  WhisperNode& node;
  bool is_leader;
  store::NodeStateStore* store = nullptr;  // null without --state-dir

  ppss::Ppss* group = nullptr;
  std::optional<wcl::RemotePeer> leader_peer = std::nullopt;
  std::optional<ppss::Accreditation> accreditation = std::nullopt;
  std::optional<crypto::RsaKeyPair> group_secret = std::nullopt;  // leader only
  std::unordered_set<std::uint64_t> ponged = {};  // leader: members answered
  net::Time next_ping_at = 0;
  bool announced_join = false;
  bool persisted_membership = false;
  bool done = false;
  int exit_code = 1;
  std::uint64_t hb_seq = 0;

  std::string path(const std::string& base) const { return opt.dir + "/" + base; }

  void finish(int code) {
    if (done) return;
    done = true;
    exit_code = code;
    if (opt.linger) return;  // keep serving: chaos peers rejoin through us
    // Linger briefly so in-flight ACKs towards peers still flow, then stop.
    backend.schedule_after(500 * net::kMillisecond,
                           [this] { backend.request_stop(); });
  }

  /// Heartbeat: "pid incarnation seq", rewritten atomically. The supervisor
  /// reads pid to track the process, incarnation to verify a restart
  /// actually bumped the epoch, and seq to tell hung from alive.
  void heartbeat() {
    ++hb_seq;
    write_text_file_atomic(
        path("hb." + std::to_string(opt.id)),
        std::to_string(::getpid()) + " " + std::to_string(node.transport().incarnation()) +
            " " + std::to_string(hb_seq) + "\n");
    backend.schedule_after(500 * net::kMillisecond, [this] { heartbeat(); });
  }

  /// Journal the current group membership (leader secret included).
  void persist_group() {
    if (store == nullptr || group == nullptr) return;
    store::StoredGroup sg;
    sg.group = GroupId{opt.group};
    sg.is_leader = is_leader;
    sg.epochs = collect_epochs(group->keyring());
    sg.passport = group->passport();
    if (is_leader) sg.group_key = group_secret;
    sg.accreditation = accreditation;
    sg.entry_point = leader_peer;
    store->record_group(sg);
  }

  /// Boot-from-state: re-instantiate persisted group membership. Leaders
  /// come back with the group key; members resume their passport and then
  /// re-join with the stored accreditation — the proof-of-life /
  /// passport-re-validation pass the group demands of a returning member.
  void resume_from_store() {
    if (store == nullptr || !store->has_state()) return;
    store::StoredGroup* sg = store->state().find_group(GroupId{opt.group});
    if (sg == nullptr) return;
    if (is_leader && sg->group_key) {
      group_secret = sg->group_key;
      group = &node.resume_group(sg->group, sg->epochs, sg->passport, sg->group_key);
      if (!group->is_leader()) {
        // Inconsistent store (key does not match the recorded epochs):
        // fall back to founding fresh via the normal tick path.
        std::fprintf(stderr, "[noded %llu] stored group key rejected, refounding\n",
                     (unsigned long long)opt.id);
        group = nullptr;
        return;
      }
      group->on_app_message = [this](const wcl::RemotePeer& from, BytesView p) {
        leader_on_ping(from, p);
      };
      std::printf("[noded %llu] group leadership resumed from state (epoch %llu)\n",
                  (unsigned long long)opt.id,
                  (unsigned long long)group->leader_epoch());
      return;
    }
    if (!is_leader) {
      accreditation = sg->accreditation;
      leader_peer = sg->entry_point;
      group = &node.resume_group(sg->group, sg->epochs, sg->passport);
      group->on_app_message = [this](const wcl::RemotePeer&, BytesView p) {
        member_on_pong(p);
      };
      std::printf("[noded %llu] membership resumed from state (passport %s)\n",
                  (unsigned long long)opt.id,
                  group->joined() ? "restored" : "pending re-join");
      // Re-validate with the group even when the stored passport verified:
      // the join response refreshes the key history and view, and tells the
      // leader this incarnation is alive.
      if (accreditation && leader_peer) group->join(*accreditation, *leader_peer);
    }
  }

  // --- Leader side. ---

  void leader_found_group() {
    crypto::Drbg drbg(opt.seed ^ 0x6e0ded);
    crypto::RsaKeyPair group_key = crypto::RsaKeyPair::generate(512, drbg);
    group_secret = group_key;
    group = &node.create_group(GroupId{opt.group}, std::move(group_key));
    group->on_app_message = [this](const wcl::RemotePeer& from, BytesView p) {
      leader_on_ping(from, p);
    };
    for (std::uint64_t i = 2; i <= opt.nodes; ++i) {
      auto invite = group->invite(NodeId{i});
      if (!invite) continue;
      Writer w;
      invite->serialize(w);
      group->self_descriptor().serialize(w);
      write_hex_file(path("invite." + std::to_string(i)), w.data());
    }
    persist_group();
    std::printf("[noded %llu] group founded, %llu invitations published\n",
                (unsigned long long)opt.id, (unsigned long long)(opt.nodes - 1));
  }

  void leader_on_ping(const wcl::RemotePeer& from, BytesView payload) {
    const std::string text = to_string(payload);
    if (text.rfind("ping ", 0) != 0) return;
    const std::uint64_t member = std::strtoull(text.c_str() + 5, nullptr, 10);
    group->send_app_to(from, to_bytes("pong " + std::to_string(member)));
    if (ponged.insert(member).second) {
      std::printf("[noded %llu] ping from member %llu (%zu/%llu)\n",
                  (unsigned long long)opt.id, (unsigned long long)member,
                  ponged.size(), (unsigned long long)(opt.nodes - 1));
    }
    if (ponged.size() == opt.nodes - 1 && !done) {
      write_hex_file(path("delivered." + std::to_string(opt.id)),
                     to_bytes("pinged-by " + std::to_string(ponged.size())));
      finish(0);
    }
  }

  // --- Member side. ---

  void member_try_join() {
    if (group != nullptr) return;
    auto bytes = read_hex_file(path("invite." + std::to_string(opt.id)));
    if (!bytes) return;
    Reader r(*bytes);
    auto invite = ppss::Accreditation::deserialize(r);
    auto leader = wcl::RemotePeer::deserialize(r);
    if (!invite || !leader || !r.expect_done()) {
      std::fprintf(stderr, "[noded %llu] malformed invitation\n",
                   (unsigned long long)opt.id);
      return;
    }
    accreditation = *invite;
    leader_peer = *leader;
    group = &node.join_group(GroupId{opt.group}, *invite, *leader);
    group->on_app_message = [this](const wcl::RemotePeer&, BytesView p) {
      member_on_pong(p);
    };
    // Journal the invitation immediately: a crash between here and the join
    // response must not lose the ability to rejoin.
    persist_group();
  }

  void member_tick() {
    member_try_join();
    if (group == nullptr) return;
    if (!group->joined()) return;
    if (!announced_join) {
      announced_join = true;
      write_hex_file(path("member." + std::to_string(opt.id)), to_bytes("joined"));
      std::printf("[noded %llu] joined group, pinging leader\n",
                  (unsigned long long)opt.id);
    }
    if (!persisted_membership && !group->passport().signature.empty()) {
      persisted_membership = true;
      persist_group();  // now with the granted passport + key history
    }
    if (done && !opt.linger) return;
    if (backend.now() < next_ping_at) return;
    // Ping until ponged; lingering nodes keep a slow liveness ping going so
    // a restarted leader can re-collect the full roster.
    group->send_app_to(*leader_peer,
                       to_bytes("ping " + std::to_string(opt.id)));
    next_ping_at = backend.now() + (done ? 2 * net::kSecond : net::kSecond);
  }

  void member_on_pong(BytesView payload) {
    if (done) return;
    const std::string expected = "pong " + std::to_string(opt.id);
    if (to_string(payload) != expected) return;
    write_hex_file(path("delivered." + std::to_string(opt.id)),
                   Bytes(payload.begin(), payload.end()));
    std::printf("[noded %llu] pong received — delivery confirmed\n",
                (unsigned long long)opt.id);
    finish(0);
  }
};

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  opt.dir = arg_string(argc, argv, "dir", "");
  opt.id = arg_u64(argc, argv, "id", 0);
  opt.nodes = arg_u64(argc, argv, "nodes", 0);
  opt.timeout_s = arg_seconds(argc, argv, "timeout", 60);
  opt.seed = arg_u64(argc, argv, "seed", 7);
  opt.group = arg_u64(argc, argv, "group", 1);
  opt.flight_path = arg_string(argc, argv, "flight", "");
  opt.state_dir = arg_string(argc, argv, "state-dir", "");
  opt.linger = arg_flag(argc, argv, "linger");
  if (opt.dir.empty() || opt.id == 0 || opt.nodes < 2 || opt.id > opt.nodes) {
    std::fprintf(stderr,
                 "usage: whisper_noded --dir=DIR --id=I --nodes=N "
                 "[--timeout=60] [--seed=7] [--group=1] [--flight=out.jsonl]\n"
                 "       [--state-dir=DIR] [--linger]\n"
                 "ids are 1..N; id 1 is the group leader\n");
    return 2;
  }

  net::UdpBackend backend;
  if (!backend.last_error().empty()) {
    std::fprintf(stderr, "backend: %s\n", backend.last_error().c_str());
    return 1;
  }
  g_backend = &backend;
  std::signal(SIGTERM, handle_term);
  std::signal(SIGINT, handle_term);

  // Durable state: open before anything touches the network. A boot from
  // existing state bumps the incarnation and journals the bump (fsync'd)
  // BEFORE the first frame goes out — peers must never see two lives of
  // this node under one epoch.
  store::NodeStateStore store;
  store::NodeStateStore* storep = nullptr;
  bool restored = false;
  if (!opt.state_dir.empty()) {
    if (!store.open(opt.state_dir)) {
      std::fprintf(stderr, "[noded %llu] state store: %s\n",
                   (unsigned long long)opt.id, store.last_error().c_str());
      return 1;
    }
    storep = &store;
    restored = store.has_state();
    if (restored && store.state().id != NodeId{opt.id}) {
      std::fprintf(stderr, "[noded %llu] state dir belongs to node %llu\n",
                   (unsigned long long)opt.id,
                   (unsigned long long)store.state().id.value);
      return 1;
    }
  }

  telemetry::Registry registry;
  telemetry::Tracer tracer;
  telemetry::FlightRecorder flight;
  tracer.set_clock(net::clock_fn(backend));
  flight.set_clock(net::clock_fn(backend));
  flight.set_enabled(!opt.flight_path.empty());
  backend.set_flight(&flight);

  Endpoint ep;
  if (restored) {
    store::NodeState& st = store.state();
    st.incarnation += 1;
    if (!store.record_incarnation(st.incarnation)) {
      std::fprintf(stderr, "[noded %llu] incarnation journal: %s\n",
                   (unsigned long long)opt.id, store.last_error().c_str());
      return 1;
    }
    // Re-bind the persisted port so peers' contact cards stay valid. The
    // placeholder handler is replaced when the transport attaches.
    backend.attach(st.endpoint, [](const net::Datagram&) {});
    if (backend.attached(st.endpoint)) {
      ep = st.endpoint;
    } else {
      // Port still held (e.g. a SIGSTOP'd predecessor): take a fresh one
      // and persist it; peers relearn the address through PSS gossip.
      const auto fresh = backend.reserve_endpoint();
      if (!fresh) {
        std::fprintf(stderr, "bind: %s\n", backend.last_error().c_str());
        return 1;
      }
      ep = *fresh;
      st.endpoint = ep;
      store.commit_snapshot();
      std::fprintf(stderr, "[noded %llu] stored port unavailable, rebound to %s\n",
                   (unsigned long long)opt.id, ep.str().c_str());
    }
    std::printf("[noded %llu] restart from state: incarnation %u at %s\n",
                (unsigned long long)opt.id, st.incarnation, ep.str().c_str());
  } else {
    const auto fresh = backend.reserve_endpoint();
    if (!fresh) {
      std::fprintf(stderr, "bind: %s\n", backend.last_error().c_str());
      return 1;
    }
    ep = *fresh;
    if (storep != nullptr) {
      store::NodeState& st = store.state();
      st.id = NodeId{opt.id};
      st.is_public = true;
      st.endpoint = ep;
      st.incarnation = 1;
      st.identity = pooled_keypair(opt.id, realtime_node_config().rsa_bits);
      if (!store.commit_snapshot()) {
        std::fprintf(stderr, "[noded %llu] snapshot: %s\n",
                     (unsigned long long)opt.id, store.last_error().c_str());
        return 1;
      }
    }
  }

  NodeConfig cfg = realtime_node_config();
  // Identity: from the store when persistent (identical keys across
  // restarts — that IS the recovery claim), from the pool otherwise.
  const crypto::RsaKeyPair identity =
      storep != nullptr ? store.state().identity : pooled_keypair(opt.id, cfg.rsa_bits);
  cfg.incarnation = storep != nullptr ? store.state().incarnation : 0;

  Rng rng(opt.seed ^ (opt.id * 0x9e3779b97f4a7c15ull));
  WhisperNode node(backend, backend, NodeId{opt.id}, ep, /*is_public=*/true,
                   identity, cfg, rng.fork(),
                   telemetry::Sinks{&registry, &tracer, &flight});
  flight.set_node_resolver([ep, &opt](Endpoint e) {
    return e == ep ? opt.id : 0ull;
  });

  Orchestrator orch{opt, backend, node, /*is_leader=*/opt.id == 1, storep};
  orch.heartbeat();

  // 1. Publish our card, then wait for the full roster before starting:
  //    everyone boots with every peer in reach, like the testbed's
  //    bootstrap handed out by an oracle.
  {
    Writer w;
    node.transport().self_card().serialize(w);
    if (!write_hex_file(orch.path("card." + std::to_string(opt.id)), w.data())) {
      std::fprintf(stderr, "cannot write %s\n",
                   orch.path("card." + std::to_string(opt.id)).c_str());
      return 1;
    }
  }

  bool started = false;
  std::function<void()> boot_poll = [&] {
    if (backend.stop_requested()) return;
    std::vector<pss::ContactCard> bootstrap;
    for (std::uint64_t i = 1; i <= opt.nodes; ++i) {
      if (i == opt.id) continue;
      auto bytes = read_hex_file(orch.path("card." + std::to_string(i)));
      if (!bytes) break;
      Reader r(*bytes);
      bootstrap.push_back(pss::ContactCard::deserialize(r));
    }
    if (bootstrap.size() == opt.nodes - 1) {
      node.start(bootstrap);
      started = true;
      if (storep != nullptr) store.record_peer_hints(bootstrap);
      // Re-announce into PSS happened via start(); now resurrect group
      // membership and (members) kick off the passport re-validation.
      orch.resume_from_store();
      std::printf("[noded %llu] up at %s, %zu bootstrap contacts%s\n",
                  (unsigned long long)opt.id, ep.str().c_str(), bootstrap.size(),
                  restored ? " (recovered)" : "");
      return;
    }
    backend.schedule_after(50 * net::kMillisecond, boot_poll);
  };
  boot_poll();

  // 2. The orchestration tick: leader founds the group once the substrate
  //    has had a moment to gossip keys; members watch for their invitation.
  const net::Time group_at = 3 * net::kSecond;
  std::function<void()> tick = [&] {
    if (backend.stop_requested()) return;
    if (started) {
      if (orch.is_leader) {
        if (orch.group == nullptr && backend.now() >= group_at) {
          orch.leader_found_group();
        }
      } else {
        orch.member_tick();
      }
    }
    backend.schedule_after(50 * net::kMillisecond, tick);
  };
  tick();

  backend.schedule_after(opt.timeout_s * net::kSecond, [&] {
    if (!orch.done) {
      std::fprintf(stderr, "[noded %llu] timeout\n", (unsigned long long)opt.id);
    }
    backend.request_stop();
  });

  backend.run();
  node.stop();

  if (!opt.flight_path.empty()) {
    const auto records = flight.assemble();
    telemetry::write_text_file(opt.flight_path, telemetry::to_jsonl(records));
    std::printf("[noded %llu] %zu flight records -> %s\n",
                (unsigned long long)opt.id, records.size(),
                opt.flight_path.c_str());
  }
  return orch.done ? orch.exit_code : 1;
}

// Quickstart: the smallest end-to-end WHISPER program.
//
// Builds a small simulated network (NATs included), creates one private
// group, invites a member, and exchanges a confidential message. This
// walks the whole stack: Nylon PSS -> key sampling -> WCL onion routes ->
// PPSS group membership.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "whisper/testbed.hpp"

using namespace whisper;

int main() {
  // 1. A simulated deployment: 40 nodes, 70% behind NATs, LAN latency.
  TestbedConfig cfg;
  cfg.initial_nodes = 40;
  cfg.natted_fraction = 0.7;
  cfg.latency = "cluster";
  cfg.node.pss.pi_min_public = 3;  // keep Π=3 P-nodes in every view
  cfg.node.wcl.pi = 3;
  cfg.seed = 7;
  WhisperTestbed tb(cfg);

  // 2. Let the substrate converge: peer sampling fills views, keys spread,
  //    connection backlogs fill with NAT-valid routes.
  std::printf("warming up the overlay (peer sampling + key sampling)...\n");
  tb.run_for(6 * net::kMinute);

  WhisperNode* alice = tb.alive_nodes()[0];
  WhisperNode* bob = tb.alive_nodes()[1];
  std::printf("alice=%s (%s), bob=%s (%s)\n", alice->id().str().c_str(),
              alice->is_public() ? "public" : "natted", bob->id().str().c_str(),
              bob->is_public() ? "public" : "natted");

  // 3. Alice founds a private group. The group has a keypair; Alice, as the
  //    leader, holds the private key and can issue invitations.
  const GroupId group{1};
  crypto::Drbg drbg(42);
  ppss::Ppss& alice_group = alice->create_group(group, crypto::RsaKeyPair::generate(512, drbg));
  std::printf("alice founded group %s (leader epoch %llu)\n", group.str().c_str(),
              static_cast<unsigned long long>(alice_group.leader_epoch()));

  // 4. Bob joins with an accreditation (in a real deployment this would be
  //    delivered out-of-band: email, chat, ...), gets his passport back.
  auto invitation = alice_group.invite(bob->id());
  ppss::Ppss& bob_group = bob->join_group(group, *invitation, alice_group.self_descriptor());
  tb.run_for(2 * net::kMinute);
  std::printf("bob joined: %s (passport verified: %s)\n", bob_group.joined() ? "yes" : "no",
              bob_group.keyring().verify_passport(bob_group.passport()) ? "yes" : "no");

  // 5. Confidential application traffic: content is onion-encrypted and
  //    routed S -> mix A -> mix B -> D; mixes and NAT relays see nothing.
  bob_group.on_app_message = [&](const wcl::RemotePeer& from, BytesView payload) {
    std::printf("bob received from %s: \"%s\"\n", from.card.id.str().c_str(),
                to_string(payload).c_str());
    bob_group.send_app_to(from, to_bytes("psst! got it."));
  };
  alice_group.on_app_message = [&](const wcl::RemotePeer& from, BytesView payload) {
    std::printf("alice received from %s: \"%s\"\n", from.card.id.str().c_str(),
                to_string(payload).c_str());
  };
  alice_group.send_app_to(bob_group.self_descriptor(), to_bytes("meet at the usual place"));
  tb.run_for(net::kMinute);

  // 6. What did it cost? WCL statistics from Alice's node.
  const auto& stats = alice->wcl().stats();
  std::printf("\nalice's WCL: %llu first-try paths, %llu via alternatives, %llu failures\n",
              static_cast<unsigned long long>(stats.first_try_success),
              static_cast<unsigned long long>(stats.alternative_success),
              static_cast<unsigned long long>(stats.no_alternative));
  std::printf("done.\n");
  return 0;
}

// Decentralized VPN emulation — the paper's §I motivating scenario: a
// multi-site company wants private connectivity between sites WITHOUT VPN
// gateways (single points of failure). Each site's machines join one
// private group; a tiny "virtual network" layer on top of the PPSS maps
// virtual addresses to members and carries frames confidentially.
//
// An eavesdropper wiretaps every physical link (the paper's attacker) and
// reports what it could extract: with WHISPER, neither frame contents nor
// the set of VPN participants is recoverable.
//
//   $ ./examples/vpn_emulation
#include <cstdio>

#include <map>
#include <unordered_set>

#include "whisper/testbed.hpp"

using namespace whisper;

namespace {

/// Virtual-network frame router on top of one PPSS group.
class VpnSite {
 public:
  VpnSite(WhisperNode* node, GroupId vpn, std::string site, std::uint32_t virtual_ip)
      : node_(node), vpn_(vpn), site_(std::move(site)), virtual_ip_(virtual_ip) {}

  void attach(std::map<std::uint32_t, VpnSite*>& routing_table) {
    routing_table[virtual_ip_] = this;
    node_->group(vpn_)->on_app_message = [this](const wcl::RemotePeer&, BytesView frame) {
      Reader r(frame);
      const std::uint32_t dst_ip = r.u32();
      const std::string data = r.str();
      if (!r.ok() || dst_ip != virtual_ip_) return;
      ++frames_received_;
      std::printf("  [10.8.0.%u %-9s] received frame: \"%s\"\n", virtual_ip_, site_.c_str(),
                  data.c_str());
    };
  }

  /// Send a frame to a virtual address (resolved through the group).
  bool send_frame(const std::map<std::uint32_t, VpnSite*>& routing_table,
                  std::uint32_t dst_ip, const std::string& data) {
    auto it = routing_table.find(dst_ip);
    if (it == routing_table.end()) return false;
    Writer w;
    w.u32(dst_ip);
    w.str(data);
    auto* peer_group = it->second->node_->group(vpn_);
    return node_->group(vpn_)->send_app_to(peer_group->self_descriptor(), w.data());
  }

  WhisperNode* node() const { return node_; }
  const std::string& site() const { return site_; }
  std::size_t frames_received() const { return frames_received_; }

 private:
  WhisperNode* node_;
  GroupId vpn_;
  std::string site_;
  std::uint32_t virtual_ip_;
  std::size_t frames_received_ = 0;
};

}  // namespace

int main() {
  TestbedConfig cfg;
  cfg.initial_nodes = 60;
  cfg.natted_fraction = 0.7;
  cfg.node.pss.pi_min_public = 3;
  cfg.node.wcl.pi = 3;
  cfg.node.ppss.cycle = 30 * net::kSecond;
  cfg.seed = 2026;
  WhisperTestbed tb(cfg);
  std::printf("booting a 60-node internet (70%% of hosts behind NATs)...\n");
  tb.run_for(6 * net::kMinute);

  // The company VPN: headquarters founds the group, branches join.
  const GroupId vpn{100};
  auto nodes = tb.alive_nodes();
  crypto::Drbg drbg(100);
  ppss::Ppss& hq_group = nodes[0]->create_group(vpn, crypto::RsaKeyPair::generate(512, drbg));

  std::vector<VpnSite> sites;
  sites.reserve(4);
  sites.emplace_back(nodes[0], vpn, "hq", 1);
  const char* branches[] = {"berlin", "osaka", "recife"};
  for (int i = 0; i < 3; ++i) {
    nodes[10 * (i + 1)]->join_group(vpn, *hq_group.invite(nodes[10 * (i + 1)]->id()),
                             hq_group.self_descriptor());
    sites.emplace_back(nodes[10 * (i + 1)], vpn, branches[i], static_cast<std::uint32_t>(i + 2));
  }
  tb.run_for(3 * net::kMinute);

  std::map<std::uint32_t, VpnSite*> routing_table;
  for (auto& s : sites) s.attach(routing_table);
  for (auto& s : sites) {
    std::printf("site %-8s node=%s (%s)\n", s.site().c_str(), s.node()->id().str().c_str(),
                s.node()->is_public() ? "public" : "behind NAT");
  }

  // The eavesdropper: taps EVERY physical link from here on.
  std::size_t tapped_packets = 0, tapped_bytes = 0;
  std::unordered_set<std::uint64_t> wcl_senders_seen;
  const Bytes payroll = to_bytes("payroll-2026.xlsx");
  bool payroll_leaked = false;
  tb.set_tap([&](const net::Datagram& d) {
    ++tapped_packets;
    tapped_bytes += d.payload.size();
    if (std::search(d.payload.begin(), d.payload.end(), payroll.begin(), payroll.end()) !=
        d.payload.end()) {
      payroll_leaked = true;
    }
    if (d.proto == net::Proto::kWcl) {
      Reader r(d.payload);
      if (r.u8() == 1) wcl_senders_seen.insert(r.node_id().value);
    }
  });

  std::printf("\n--- virtual network traffic (eavesdropper on every link) ---\n");
  sites[0].send_frame(routing_table, 2, "payroll-2026.xlsx -> berlin");
  tb.run_for(net::kMinute);
  sites[1].send_frame(routing_table, 3, "forwarding payroll-2026.xlsx to osaka");
  tb.run_for(net::kMinute);
  sites[3].send_frame(routing_table, 1, "recife quarterly numbers to hq");
  tb.run_for(net::kMinute);
  tb.set_tap(nullptr);

  std::printf("\n--- what the eavesdropper got ---\n");
  std::printf("packets observed: %zu (%.1f KB)\n", tapped_packets,
              static_cast<double>(tapped_bytes) / 1024.0);
  std::printf("frame contents recovered: %s\n", payroll_leaked ? "YES (!)" : "none");
  std::printf("nodes seen forwarding confidential traffic: %zu "
              "(mixes and relays all over the network -- the 4 VPN sites are\n"
              " indistinguishable within this set; group membership stays hidden)\n",
              wcl_senders_seen.size());

  std::size_t delivered = 0;
  for (auto& s : sites) delivered += s.frames_received();
  std::printf("\nframes delivered end-to-end: %zu/3\n", delivered);
  std::printf("no VPN gateway existed at any point: kill any node and the overlay heals.\n");
  return 0;
}

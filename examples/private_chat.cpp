// Private chat room: the paper's motivating "private chat rooms in social
// networks" scenario (§I).
//
// A moderator founds a room; members join over time and broadcast messages
// to everyone in their private view (gossip-style flooding with
// deduplication). External observers — including the NAT relays carrying
// the traffic — can see neither the content nor who is chatting with whom.
// The example also survives a member crash and a moderator (leader) crash
// followed by a leader election.
//
//   $ ./examples/private_chat
#include <cstdio>

#include <unordered_set>

#include "whisper/testbed.hpp"

using namespace whisper;

namespace {

// A tiny chat application on top of the PPSS app channel: messages carry a
// unique id and are re-broadcast once to the local private view (flooding).
class ChatMember {
 public:
  ChatMember(WhisperTestbed& tb, WhisperNode* node, GroupId group, std::string name)
      : tb_(tb), node_(node), group_(group), name_(std::move(name)) {}

  void attach() {
    auto* g = node_->group(group_);
    g->on_app_message = [this](const wcl::RemotePeer& from, BytesView payload) {
      on_message(from, payload);
    };
  }

  void say(const std::string& text) {
    Writer w;
    w.u64(next_msg_id());
    w.str(name_);
    w.str(text);
    seen_.insert(last_id_);
    std::printf("[%6.1fs] %s says: \"%s\"\n",
                static_cast<double>(tb_.clock().now()) / net::kSecond, name_.c_str(),
                text.c_str());
    broadcast(w.data());
  }

  std::size_t messages_heard() const { return heard_; }
  const std::string& name() const { return name_; }

 private:
  std::uint64_t next_msg_id() {
    last_id_ = (node_->id().value << 24) | ++counter_;
    return last_id_;
  }

  void broadcast(BytesView payload) {
    auto* g = node_->group(group_);
    for (const auto& entry : g->private_view().entries()) {
      g->send_app_to(entry.peer, payload);
    }
  }

  void on_message(const wcl::RemotePeer&, BytesView payload) {
    Reader r(payload);
    const std::uint64_t id = r.u64();
    const std::string who = r.str();
    const std::string text = r.str();
    if (!r.ok() || seen_.contains(id)) return;
    seen_.insert(id);
    ++heard_;
    std::printf("[%6.1fs]   %s hears %s: \"%s\"\n",
                static_cast<double>(tb_.clock().now()) / net::kSecond, name_.c_str(),
                who.c_str(), text.c_str());
    broadcast(payload);  // flood once
  }

  WhisperTestbed& tb_;
  WhisperNode* node_;
  GroupId group_;
  std::string name_;
  std::uint64_t counter_ = 0;
  std::uint64_t last_id_ = 0;
  std::unordered_set<std::uint64_t> seen_;
  std::size_t heard_ = 0;
};

}  // namespace

int main() {
  TestbedConfig cfg;
  cfg.initial_nodes = 50;
  cfg.natted_fraction = 0.7;
  cfg.node.pss.pi_min_public = 3;
  cfg.node.wcl.pi = 3;
  cfg.node.ppss.cycle = 30 * net::kSecond;
  cfg.node.ppss.leader_timeout = 3 * net::kMinute;
  cfg.seed = 99;
  WhisperTestbed tb(cfg);
  std::printf("booting 50-node network (70%% natted)...\n");
  tb.run_for(6 * net::kMinute);

  const GroupId room{1};
  auto nodes = tb.alive_nodes();
  const char* names[] = {"mallory-the-mod", "alice", "bob", "carol", "dave", "erin"};

  // The moderator founds the room, everyone else joins by invitation.
  crypto::Drbg drbg(1);
  ppss::Ppss& mod = nodes[0]->create_group(room, crypto::RsaKeyPair::generate(512, drbg));
  std::vector<ChatMember> members;
  members.reserve(6);
  members.emplace_back(tb, nodes[0], room, names[0]);
  for (int i = 1; i < 6; ++i) {
    nodes[i]->join_group(room, *mod.invite(nodes[i]->id()), mod.self_descriptor());
    members.emplace_back(tb, nodes[i], room, names[i]);
    tb.run_for(10 * net::kSecond);
  }
  tb.run_for(4 * net::kMinute);  // private views converge
  for (auto& m : members) m.attach();

  std::printf("\n--- chat begins ---\n");
  members[1].say("is this thing on?");
  tb.run_for(net::kMinute);
  members[2].say("loud and clear, and nobody outside can tell we're talking");
  tb.run_for(net::kMinute);

  std::printf("\n--- dave's machine crashes ---\n");
  tb.kill_node(nodes[4]->id());
  tb.run_for(2 * net::kMinute);
  members[3].say("dave dropped, carry on");
  tb.run_for(net::kMinute);

  std::printf("\n--- the moderator crashes; leader election kicks in ---\n");
  tb.kill_node(nodes[0]->id());
  tb.run_for(12 * net::kMinute);
  std::size_t leaders = 0;
  for (int i = 1; i < 6; ++i) {
    if (i == 4) continue;  // dave is gone
    if (nodes[i]->group(room)->is_leader()) {
      ++leaders;
      std::printf("new leader elected: %s (epoch %llu)\n", names[i],
                  static_cast<unsigned long long>(nodes[i]->group(room)->leader_epoch()));
    }
  }
  members[5].say("room survives its founder");
  tb.run_for(net::kMinute);

  std::printf("\n--- summary ---\n");
  for (auto& m : members) {
    std::printf("%-16s heard %zu message(s)\n", m.name().c_str(), m.messages_heard());
  }
  std::printf("leaders after election: %zu\n", leaders);
  return 0;
}

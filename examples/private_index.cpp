// Private distributed index: the paper's §V-G scenario — a subset of nodes
// operates a Chord DHT *inside* a private group "to share the location of
// sensitive data", with all traffic over WCL confidential routes.
//
// Builds the T-Chord ring, stores a few key->value bindings at their ring
// owners, then looks them up from random members, printing routing costs.
//
//   $ ./examples/private_index
#include <cstdio>

#include <map>

#include "chord/tchord.hpp"
#include "crypto/sha256.hpp"
#include "whisper/testbed.hpp"

using namespace whisper;

namespace {

chord::ChordKey key_for(const std::string& name) {
  return crypto::fingerprint64(to_bytes(name));
}

}  // namespace

int main() {
  TestbedConfig cfg;
  cfg.initial_nodes = 80;
  cfg.natted_fraction = 0.7;
  cfg.node.pss.pi_min_public = 3;
  cfg.node.wcl.pi = 3;
  cfg.node.ppss.cycle = 30 * net::kSecond;
  cfg.seed = 123;
  WhisperTestbed tb(cfg);
  std::printf("booting 80-node network; 16 nodes will run a private index...\n");
  tb.run_for(6 * net::kMinute);

  // Found the group and enroll 16 members.
  const GroupId group{7};
  auto nodes = tb.alive_nodes();
  crypto::Drbg drbg(7);
  ppss::Ppss& founder = nodes[0]->create_group(group, crypto::RsaKeyPair::generate(512, drbg));
  std::vector<WhisperNode*> members{nodes[0]};
  for (std::size_t i = 1; i < 16; ++i) {
    nodes[i]->join_group(group, *founder.invite(nodes[i]->id()), founder.self_descriptor());
    members.push_back(nodes[i]);
    tb.run_for(5 * net::kSecond);
  }
  tb.run_for(4 * net::kMinute);

  // Bootstrap T-Chord on every member.
  chord::TChordConfig tc;
  tc.cycle = 20 * net::kSecond;
  std::vector<std::unique_ptr<chord::TChord>> rings;
  for (WhisperNode* m : members) {
    rings.push_back(std::make_unique<chord::TChord>(tb.clock(), *m->group(group), tc,
                                                    tb.rng().fork()));
    rings.back()->start();
  }
  std::printf("converging the private Chord ring...\n");
  tb.run_for(8 * net::kMinute);

  // Check ring health against global knowledge.
  std::map<chord::ChordKey, NodeId> global;
  for (WhisperNode* m : members) global[chord::chord_key_of(m->id())] = m->id();
  std::size_t correct_succ = 0;
  for (auto& r : rings) {
    auto succ = r->successor();
    auto it = global.upper_bound(r->self_key());
    if (it == global.end()) it = global.begin();
    if (succ && succ->id() == it->second) ++correct_succ;
  }
  std::printf("ring converged: %zu/%zu correct successors\n", correct_succ, rings.size());

  // "Store" documents: the owner of hash(name) is responsible for it.
  const char* documents[] = {"fieldnotes.pdf", "sources.txt", "ledger-2026.db",
                             "safehouse-map.png", "contact-sheet.csv"};
  std::printf("\nresolving document owners through the private index:\n");
  Rng rng(55);
  int resolved = 0;
  for (const char* doc : documents) {
    const chord::ChordKey key = key_for(doc);
    auto it = global.lower_bound(key);
    if (it == global.end()) it = global.begin();
    const NodeId expected = it->second;
    auto& querier = rings[rng.pick_index(rings)];
    querier->lookup(key, [&, doc, expected](std::optional<chord::TChord::LookupResult> res) {
      if (!res) {
        std::printf("  %-18s lookup timed out\n", doc);
        return;
      }
      ++resolved;
      std::printf("  %-18s -> owner %-5s (%u hops, %.0f ms)%s\n", doc,
                  res->owner.id().str().c_str(), res->hops,
                  static_cast<double>(res->rtt) / net::kMillisecond,
                  res->owner.id() == expected ? "" : "  [stale owner]");
    });
    tb.run_for(45 * net::kSecond);  // leaves room for one lookup retry
  }

  std::printf("\n%d/5 documents resolved — every hop travelled over onion-encrypted\n"
              "WCL routes; nodes outside the group cannot even tell the index exists.\n",
              resolved);
  return 0;
}

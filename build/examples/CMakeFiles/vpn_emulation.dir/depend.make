# Empty dependencies file for vpn_emulation.
# This may be replaced when dependencies are built.

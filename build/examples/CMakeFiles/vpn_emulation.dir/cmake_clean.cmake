file(REMOVE_RECURSE
  "CMakeFiles/vpn_emulation.dir/vpn_emulation.cpp.o"
  "CMakeFiles/vpn_emulation.dir/vpn_emulation.cpp.o.d"
  "vpn_emulation"
  "vpn_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpn_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

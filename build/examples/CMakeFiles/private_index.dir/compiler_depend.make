# Empty compiler generated dependencies file for private_index.
# This may be replaced when dependencies are built.

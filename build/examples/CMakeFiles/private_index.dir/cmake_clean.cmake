file(REMOVE_RECURSE
  "CMakeFiles/private_index.dir/private_index.cpp.o"
  "CMakeFiles/private_index.dir/private_index.cpp.o.d"
  "private_index"
  "private_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/crypto/aes128_test.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/aes128_test.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/aes128_test.cpp.o.d"
  "/root/repo/tests/crypto/bigint_reference_test.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/bigint_reference_test.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/bigint_reference_test.cpp.o.d"
  "/root/repo/tests/crypto/bigint_test.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/bigint_test.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/bigint_test.cpp.o.d"
  "/root/repo/tests/crypto/crypto_properties_test.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/crypto_properties_test.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/crypto_properties_test.cpp.o.d"
  "/root/repo/tests/crypto/envelope_test.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/envelope_test.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/envelope_test.cpp.o.d"
  "/root/repo/tests/crypto/hmac_test.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/hmac_test.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/hmac_test.cpp.o.d"
  "/root/repo/tests/crypto/onion_test.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/onion_test.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/onion_test.cpp.o.d"
  "/root/repo/tests/crypto/rsa_test.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/rsa_test.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/rsa_test.cpp.o.d"
  "/root/repo/tests/crypto/sha256_test.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/sha256_test.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/sha256_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/whisper_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/whisper_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/test_crypto.dir/crypto/aes128_test.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/aes128_test.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/bigint_reference_test.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/bigint_reference_test.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/bigint_test.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/bigint_test.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/crypto_properties_test.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/crypto_properties_test.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/envelope_test.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/envelope_test.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/hmac_test.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/hmac_test.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/onion_test.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/onion_test.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/rsa_test.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/rsa_test.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/sha256_test.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/sha256_test.cpp.o.d"
  "test_crypto"
  "test_crypto.pdb"
  "test_crypto[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_wcl.dir/wcl/backlog_test.cpp.o"
  "CMakeFiles/test_wcl.dir/wcl/backlog_test.cpp.o.d"
  "CMakeFiles/test_wcl.dir/wcl/wcl_test.cpp.o"
  "CMakeFiles/test_wcl.dir/wcl/wcl_test.cpp.o.d"
  "test_wcl"
  "test_wcl.pdb"
  "test_wcl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

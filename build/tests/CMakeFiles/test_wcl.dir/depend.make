# Empty dependencies file for test_wcl.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for test_ppss.
# This may be replaced when dependencies are built.

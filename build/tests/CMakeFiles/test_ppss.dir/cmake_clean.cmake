file(REMOVE_RECURSE
  "CMakeFiles/test_ppss.dir/ppss/group_test.cpp.o"
  "CMakeFiles/test_ppss.dir/ppss/group_test.cpp.o.d"
  "CMakeFiles/test_ppss.dir/ppss/ppss_edge_test.cpp.o"
  "CMakeFiles/test_ppss.dir/ppss/ppss_edge_test.cpp.o.d"
  "CMakeFiles/test_ppss.dir/ppss/ppss_test.cpp.o"
  "CMakeFiles/test_ppss.dir/ppss/ppss_test.cpp.o.d"
  "test_ppss"
  "test_ppss.pdb"
  "test_ppss[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ppss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_nylon.dir/nylon/nat_matrix_test.cpp.o"
  "CMakeFiles/test_nylon.dir/nylon/nat_matrix_test.cpp.o.d"
  "CMakeFiles/test_nylon.dir/nylon/pss_protocol_test.cpp.o"
  "CMakeFiles/test_nylon.dir/nylon/pss_protocol_test.cpp.o.d"
  "CMakeFiles/test_nylon.dir/nylon/transport_test.cpp.o"
  "CMakeFiles/test_nylon.dir/nylon/transport_test.cpp.o.d"
  "test_nylon"
  "test_nylon.pdb"
  "test_nylon[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nylon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

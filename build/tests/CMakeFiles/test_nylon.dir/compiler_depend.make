# Empty compiler generated dependencies file for test_nylon.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_keysvc.dir/keysvc/keyservice_test.cpp.o"
  "CMakeFiles/test_keysvc.dir/keysvc/keyservice_test.cpp.o.d"
  "test_keysvc"
  "test_keysvc.pdb"
  "test_keysvc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_keysvc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

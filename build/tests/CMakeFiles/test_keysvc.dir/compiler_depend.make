# Empty compiler generated dependencies file for test_keysvc.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for test_pss.
# This may be replaced when dependencies are built.

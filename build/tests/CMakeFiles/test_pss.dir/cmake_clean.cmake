file(REMOVE_RECURSE
  "CMakeFiles/test_pss.dir/pss/metrics_test.cpp.o"
  "CMakeFiles/test_pss.dir/pss/metrics_test.cpp.o.d"
  "CMakeFiles/test_pss.dir/pss/view_test.cpp.o"
  "CMakeFiles/test_pss.dir/pss/view_test.cpp.o.d"
  "test_pss"
  "test_pss.pdb"
  "test_pss[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

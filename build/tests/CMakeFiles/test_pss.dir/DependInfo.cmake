
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pss/metrics_test.cpp" "tests/CMakeFiles/test_pss.dir/pss/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/test_pss.dir/pss/metrics_test.cpp.o.d"
  "/root/repo/tests/pss/view_test.cpp" "tests/CMakeFiles/test_pss.dir/pss/view_test.cpp.o" "gcc" "tests/CMakeFiles/test_pss.dir/pss/view_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pss/CMakeFiles/whisper_pss.dir/DependInfo.cmake"
  "/root/repo/build/src/nylon/CMakeFiles/whisper_nylon.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/whisper_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/whisper_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

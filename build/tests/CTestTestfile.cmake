# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_crypto[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_nat[1]_include.cmake")
include("/root/repo/build/tests/test_pss[1]_include.cmake")
include("/root/repo/build/tests/test_nylon[1]_include.cmake")
include("/root/repo/build/tests/test_keysvc[1]_include.cmake")
include("/root/repo/build/tests/test_wcl[1]_include.cmake")
include("/root/repo/build/tests/test_ppss[1]_include.cmake")
include("/root/repo/build/tests/test_chord[1]_include.cmake")
include("/root/repo/build/tests/test_churn[1]_include.cmake")
include("/root/repo/build/tests/test_whisper[1]_include.cmake")
include("/root/repo/build/tests/test_security[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_overlay[1]_include.cmake")
include("/root/repo/build/tests/test_wire_fuzz[1]_include.cmake")

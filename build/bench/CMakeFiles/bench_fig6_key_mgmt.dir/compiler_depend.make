# Empty compiler generated dependencies file for bench_fig6_key_mgmt.
# This may be replaced when dependencies are built.

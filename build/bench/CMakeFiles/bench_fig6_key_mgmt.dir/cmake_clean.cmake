file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_key_mgmt.dir/bench_fig6_key_mgmt.cpp.o"
  "CMakeFiles/bench_fig6_key_mgmt.dir/bench_fig6_key_mgmt.cpp.o.d"
  "bench_fig6_key_mgmt"
  "bench_fig6_key_mgmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_key_mgmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

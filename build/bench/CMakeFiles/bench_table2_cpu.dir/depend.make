# Empty dependencies file for bench_table2_cpu.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig8_groups.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_table1_churn.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_pss_micro.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_pss_micro.dir/bench_pss_micro.cpp.o"
  "CMakeFiles/bench_pss_micro.dir/bench_pss_micro.cpp.o.d"
  "bench_pss_micro"
  "bench_pss_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pss_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

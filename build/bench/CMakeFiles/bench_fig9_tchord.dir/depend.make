# Empty dependencies file for bench_fig9_tchord.
# This may be replaced when dependencies are built.

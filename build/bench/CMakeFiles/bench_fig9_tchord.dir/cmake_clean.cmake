file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_tchord.dir/bench_fig9_tchord.cpp.o"
  "CMakeFiles/bench_fig9_tchord.dir/bench_fig9_tchord.cpp.o.d"
  "bench_fig9_tchord"
  "bench_fig9_tchord.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_tchord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

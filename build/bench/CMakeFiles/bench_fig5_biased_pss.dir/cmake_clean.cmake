file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_biased_pss.dir/bench_fig5_biased_pss.cpp.o"
  "CMakeFiles/bench_fig5_biased_pss.dir/bench_fig5_biased_pss.cpp.o.d"
  "bench_fig5_biased_pss"
  "bench_fig5_biased_pss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_biased_pss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

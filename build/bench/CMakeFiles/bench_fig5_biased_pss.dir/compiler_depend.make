# Empty compiler generated dependencies file for bench_fig5_biased_pss.
# This may be replaced when dependencies are built.

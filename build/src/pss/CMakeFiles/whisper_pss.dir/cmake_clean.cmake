file(REMOVE_RECURSE
  "CMakeFiles/whisper_pss.dir/metrics.cpp.o"
  "CMakeFiles/whisper_pss.dir/metrics.cpp.o.d"
  "libwhisper_pss.a"
  "libwhisper_pss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_pss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libwhisper_pss.a"
)

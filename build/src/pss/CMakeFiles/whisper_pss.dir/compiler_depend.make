# Empty compiler generated dependencies file for whisper_pss.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libwhisper_overlay.a"
)

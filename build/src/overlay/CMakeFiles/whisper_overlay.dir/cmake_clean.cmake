file(REMOVE_RECURSE
  "CMakeFiles/whisper_overlay.dir/aggregation.cpp.o"
  "CMakeFiles/whisper_overlay.dir/aggregation.cpp.o.d"
  "CMakeFiles/whisper_overlay.dir/broadcast.cpp.o"
  "CMakeFiles/whisper_overlay.dir/broadcast.cpp.o.d"
  "CMakeFiles/whisper_overlay.dir/gosskip.cpp.o"
  "CMakeFiles/whisper_overlay.dir/gosskip.cpp.o.d"
  "CMakeFiles/whisper_overlay.dir/tman.cpp.o"
  "CMakeFiles/whisper_overlay.dir/tman.cpp.o.d"
  "libwhisper_overlay.a"
  "libwhisper_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

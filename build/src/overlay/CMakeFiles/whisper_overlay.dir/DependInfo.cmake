
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/overlay/aggregation.cpp" "src/overlay/CMakeFiles/whisper_overlay.dir/aggregation.cpp.o" "gcc" "src/overlay/CMakeFiles/whisper_overlay.dir/aggregation.cpp.o.d"
  "/root/repo/src/overlay/broadcast.cpp" "src/overlay/CMakeFiles/whisper_overlay.dir/broadcast.cpp.o" "gcc" "src/overlay/CMakeFiles/whisper_overlay.dir/broadcast.cpp.o.d"
  "/root/repo/src/overlay/gosskip.cpp" "src/overlay/CMakeFiles/whisper_overlay.dir/gosskip.cpp.o" "gcc" "src/overlay/CMakeFiles/whisper_overlay.dir/gosskip.cpp.o.d"
  "/root/repo/src/overlay/tman.cpp" "src/overlay/CMakeFiles/whisper_overlay.dir/tman.cpp.o" "gcc" "src/overlay/CMakeFiles/whisper_overlay.dir/tman.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ppss/CMakeFiles/whisper_ppss.dir/DependInfo.cmake"
  "/root/repo/build/src/wcl/CMakeFiles/whisper_wcl.dir/DependInfo.cmake"
  "/root/repo/build/src/keysvc/CMakeFiles/whisper_keysvc.dir/DependInfo.cmake"
  "/root/repo/build/src/nylon/CMakeFiles/whisper_nylon.dir/DependInfo.cmake"
  "/root/repo/build/src/pss/CMakeFiles/whisper_pss.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/whisper_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/whisper_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/whisper_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

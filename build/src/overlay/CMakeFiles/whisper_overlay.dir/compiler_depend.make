# Empty compiler generated dependencies file for whisper_overlay.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libwhisper_common.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/whisper_common.dir/log.cpp.o"
  "CMakeFiles/whisper_common.dir/log.cpp.o.d"
  "CMakeFiles/whisper_common.dir/rng.cpp.o"
  "CMakeFiles/whisper_common.dir/rng.cpp.o.d"
  "CMakeFiles/whisper_common.dir/serialize.cpp.o"
  "CMakeFiles/whisper_common.dir/serialize.cpp.o.d"
  "CMakeFiles/whisper_common.dir/stats.cpp.o"
  "CMakeFiles/whisper_common.dir/stats.cpp.o.d"
  "CMakeFiles/whisper_common.dir/table.cpp.o"
  "CMakeFiles/whisper_common.dir/table.cpp.o.d"
  "libwhisper_common.a"
  "libwhisper_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

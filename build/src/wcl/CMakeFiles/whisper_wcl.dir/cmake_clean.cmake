file(REMOVE_RECURSE
  "CMakeFiles/whisper_wcl.dir/backlog.cpp.o"
  "CMakeFiles/whisper_wcl.dir/backlog.cpp.o.d"
  "CMakeFiles/whisper_wcl.dir/wcl.cpp.o"
  "CMakeFiles/whisper_wcl.dir/wcl.cpp.o.d"
  "libwhisper_wcl.a"
  "libwhisper_wcl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_wcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

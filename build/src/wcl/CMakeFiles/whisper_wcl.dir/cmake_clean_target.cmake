file(REMOVE_RECURSE
  "libwhisper_wcl.a"
)

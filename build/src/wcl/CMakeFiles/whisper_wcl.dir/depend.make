# Empty dependencies file for whisper_wcl.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("crypto")
subdirs("sim")
subdirs("nat")
subdirs("pss")
subdirs("nylon")
subdirs("keysvc")
subdirs("wcl")
subdirs("ppss")
subdirs("chord")
subdirs("overlay")
subdirs("churn")
subdirs("whisper")

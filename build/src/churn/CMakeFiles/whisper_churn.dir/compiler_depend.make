# Empty compiler generated dependencies file for whisper_churn.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/whisper_churn.dir/churn.cpp.o"
  "CMakeFiles/whisper_churn.dir/churn.cpp.o.d"
  "libwhisper_churn.a"
  "libwhisper_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

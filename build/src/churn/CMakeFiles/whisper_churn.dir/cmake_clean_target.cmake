file(REMOVE_RECURSE
  "libwhisper_churn.a"
)

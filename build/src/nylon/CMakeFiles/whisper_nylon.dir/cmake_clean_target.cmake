file(REMOVE_RECURSE
  "libwhisper_nylon.a"
)

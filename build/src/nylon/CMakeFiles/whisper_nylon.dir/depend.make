# Empty dependencies file for whisper_nylon.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/whisper_nylon.dir/pss.cpp.o"
  "CMakeFiles/whisper_nylon.dir/pss.cpp.o.d"
  "CMakeFiles/whisper_nylon.dir/transport.cpp.o"
  "CMakeFiles/whisper_nylon.dir/transport.cpp.o.d"
  "libwhisper_nylon.a"
  "libwhisper_nylon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_nylon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libwhisper_keysvc.a"
)

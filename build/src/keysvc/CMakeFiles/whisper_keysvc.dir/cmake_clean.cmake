file(REMOVE_RECURSE
  "CMakeFiles/whisper_keysvc.dir/keyservice.cpp.o"
  "CMakeFiles/whisper_keysvc.dir/keyservice.cpp.o.d"
  "libwhisper_keysvc.a"
  "libwhisper_keysvc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_keysvc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for whisper_keysvc.
# This may be replaced when dependencies are built.

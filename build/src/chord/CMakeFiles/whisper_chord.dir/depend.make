# Empty dependencies file for whisper_chord.
# This may be replaced when dependencies are built.

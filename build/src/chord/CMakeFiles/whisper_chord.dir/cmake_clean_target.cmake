file(REMOVE_RECURSE
  "libwhisper_chord.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/whisper_chord.dir/tchord.cpp.o"
  "CMakeFiles/whisper_chord.dir/tchord.cpp.o.d"
  "libwhisper_chord.a"
  "libwhisper_chord.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_chord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/whisper_nat.dir/nat.cpp.o"
  "CMakeFiles/whisper_nat.dir/nat.cpp.o.d"
  "libwhisper_nat.a"
  "libwhisper_nat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_nat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

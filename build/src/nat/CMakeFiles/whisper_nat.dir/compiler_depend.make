# Empty compiler generated dependencies file for whisper_nat.
# This may be replaced when dependencies are built.

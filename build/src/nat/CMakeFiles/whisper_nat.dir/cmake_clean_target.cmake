file(REMOVE_RECURSE
  "libwhisper_nat.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/whisper_sim.dir/latency.cpp.o"
  "CMakeFiles/whisper_sim.dir/latency.cpp.o.d"
  "CMakeFiles/whisper_sim.dir/network.cpp.o"
  "CMakeFiles/whisper_sim.dir/network.cpp.o.d"
  "CMakeFiles/whisper_sim.dir/simulator.cpp.o"
  "CMakeFiles/whisper_sim.dir/simulator.cpp.o.d"
  "libwhisper_sim.a"
  "libwhisper_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/whisper_ppss.dir/group.cpp.o"
  "CMakeFiles/whisper_ppss.dir/group.cpp.o.d"
  "CMakeFiles/whisper_ppss.dir/ppss.cpp.o"
  "CMakeFiles/whisper_ppss.dir/ppss.cpp.o.d"
  "libwhisper_ppss.a"
  "libwhisper_ppss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_ppss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for whisper_ppss.
# This may be replaced when dependencies are built.

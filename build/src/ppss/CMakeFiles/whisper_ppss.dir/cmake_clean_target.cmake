file(REMOVE_RECURSE
  "libwhisper_ppss.a"
)

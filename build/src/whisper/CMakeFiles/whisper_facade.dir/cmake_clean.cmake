file(REMOVE_RECURSE
  "CMakeFiles/whisper_facade.dir/keypool.cpp.o"
  "CMakeFiles/whisper_facade.dir/keypool.cpp.o.d"
  "CMakeFiles/whisper_facade.dir/node.cpp.o"
  "CMakeFiles/whisper_facade.dir/node.cpp.o.d"
  "CMakeFiles/whisper_facade.dir/testbed.cpp.o"
  "CMakeFiles/whisper_facade.dir/testbed.cpp.o.d"
  "libwhisper_facade.a"
  "libwhisper_facade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_facade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

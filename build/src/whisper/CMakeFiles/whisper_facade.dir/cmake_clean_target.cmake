file(REMOVE_RECURSE
  "libwhisper_facade.a"
)

# Empty compiler generated dependencies file for whisper_facade.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libwhisper_crypto.a"
)

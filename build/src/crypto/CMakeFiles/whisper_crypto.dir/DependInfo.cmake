
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes128.cpp" "src/crypto/CMakeFiles/whisper_crypto.dir/aes128.cpp.o" "gcc" "src/crypto/CMakeFiles/whisper_crypto.dir/aes128.cpp.o.d"
  "/root/repo/src/crypto/bigint.cpp" "src/crypto/CMakeFiles/whisper_crypto.dir/bigint.cpp.o" "gcc" "src/crypto/CMakeFiles/whisper_crypto.dir/bigint.cpp.o.d"
  "/root/repo/src/crypto/envelope.cpp" "src/crypto/CMakeFiles/whisper_crypto.dir/envelope.cpp.o" "gcc" "src/crypto/CMakeFiles/whisper_crypto.dir/envelope.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/crypto/CMakeFiles/whisper_crypto.dir/hmac.cpp.o" "gcc" "src/crypto/CMakeFiles/whisper_crypto.dir/hmac.cpp.o.d"
  "/root/repo/src/crypto/onion.cpp" "src/crypto/CMakeFiles/whisper_crypto.dir/onion.cpp.o" "gcc" "src/crypto/CMakeFiles/whisper_crypto.dir/onion.cpp.o.d"
  "/root/repo/src/crypto/random.cpp" "src/crypto/CMakeFiles/whisper_crypto.dir/random.cpp.o" "gcc" "src/crypto/CMakeFiles/whisper_crypto.dir/random.cpp.o.d"
  "/root/repo/src/crypto/rsa.cpp" "src/crypto/CMakeFiles/whisper_crypto.dir/rsa.cpp.o" "gcc" "src/crypto/CMakeFiles/whisper_crypto.dir/rsa.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/whisper_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/whisper_crypto.dir/sha256.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/whisper_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

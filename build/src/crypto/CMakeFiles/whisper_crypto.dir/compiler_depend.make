# Empty compiler generated dependencies file for whisper_crypto.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/whisper_crypto.dir/aes128.cpp.o"
  "CMakeFiles/whisper_crypto.dir/aes128.cpp.o.d"
  "CMakeFiles/whisper_crypto.dir/bigint.cpp.o"
  "CMakeFiles/whisper_crypto.dir/bigint.cpp.o.d"
  "CMakeFiles/whisper_crypto.dir/envelope.cpp.o"
  "CMakeFiles/whisper_crypto.dir/envelope.cpp.o.d"
  "CMakeFiles/whisper_crypto.dir/hmac.cpp.o"
  "CMakeFiles/whisper_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/whisper_crypto.dir/onion.cpp.o"
  "CMakeFiles/whisper_crypto.dir/onion.cpp.o.d"
  "CMakeFiles/whisper_crypto.dir/random.cpp.o"
  "CMakeFiles/whisper_crypto.dir/random.cpp.o.d"
  "CMakeFiles/whisper_crypto.dir/rsa.cpp.o"
  "CMakeFiles/whisper_crypto.dir/rsa.cpp.o.d"
  "CMakeFiles/whisper_crypto.dir/sha256.cpp.o"
  "CMakeFiles/whisper_crypto.dir/sha256.cpp.o.d"
  "libwhisper_crypto.a"
  "libwhisper_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

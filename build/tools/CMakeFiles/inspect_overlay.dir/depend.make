# Empty dependencies file for inspect_overlay.
# This may be replaced when dependencies are built.

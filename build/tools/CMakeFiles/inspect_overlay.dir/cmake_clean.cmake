file(REMOVE_RECURSE
  "CMakeFiles/inspect_overlay.dir/inspect_overlay.cpp.o"
  "CMakeFiles/inspect_overlay.dir/inspect_overlay.cpp.o.d"
  "inspect_overlay"
  "inspect_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/whisper_sim_cli.dir/whisper_sim.cpp.o"
  "CMakeFiles/whisper_sim_cli.dir/whisper_sim.cpp.o.d"
  "whisper_sim_cli"
  "whisper_sim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Figure 6: bandwidth cost of the public key sampling service.
//
// Paper setup: 1,000 nodes, PSS cycle 10 s, average up/down KB per cycle
// split by node class, for configurations: unbiased PSS without keys,
// unbiased + key sampling, and Pi in {1,2,3} + key sampling; under N:P
// ratios 80/20, 70/30 and 50/50. Expected shape: <= ~3 KB/cycle, growing
// with Pi; P-nodes above N-nodes; costs grow as the share of P-nodes drops.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"

namespace whisper {
namespace {

struct Fig6Row {
  std::string label;
  double n_up_kb, n_down_kb, p_up_kb, p_down_kb;
};

Fig6Row run_config(std::size_t n_nodes, double natted_fraction, std::size_t pi,
                   bool key_sampling, const std::string& label) {
  TestbedConfig cfg;
  cfg.initial_nodes = n_nodes;
  cfg.natted_fraction = natted_fraction;
  cfg.latency = "cluster";
  cfg.node.pss.view_size = 10;
  cfg.node.pss.pi_min_public = pi;
  cfg.node.keys.key_wire_size = key_sampling ? 1024 : 0;
  cfg.seed = 600 + pi + (key_sampling ? 7 : 0);
  WhisperTestbed tb(cfg);

  // Warm-up, then measure over a window.
  tb.run_for(5 * net::kMinute);
  tb.reset_traffic();
  const std::size_t cycles = 30;
  tb.run_for(cycles * cfg.node.pss.cycle);

  // Bandwidth comes straight off the telemetry registry: the network books
  // every byte into per-node "net.node.bytes" counters labeled by
  // node/proto/direction.
  const telemetry::Registry& reg = tb.registry();
  const auto node_bytes = [&](Endpoint ep, net::Proto proto, const char* dir) {
    return reg.counter_value("net.node.bytes", sim::Network::traffic_labels(ep, proto, dir));
  };
  Samples n_up, n_down, p_up, p_down;
  for (WhisperNode* node : tb.alive_nodes()) {
    const Endpoint ep = node->internal_endpoint();
    const double up = static_cast<double>(node_bytes(ep, net::Proto::kPss, "up") +
                                          node_bytes(ep, net::Proto::kKeys, "up")) /
                      static_cast<double>(cycles) / 1024.0;
    const double down = static_cast<double>(node_bytes(ep, net::Proto::kPss, "down") +
                                            node_bytes(ep, net::Proto::kKeys, "down")) /
                        static_cast<double>(cycles) / 1024.0;
    if (node->is_public()) {
      p_up.add(up);
      p_down.add(down);
    } else {
      n_up.add(up);
      n_down.add(down);
    }
  }
  return Fig6Row{label, n_up.mean(), n_down.mean(), p_up.mean(), p_down.mean()};
}

}  // namespace
}  // namespace whisper

int main(int argc, char** argv) {
  using namespace whisper;
  const std::size_t nodes = bench::arg_size(argc, argv, "nodes", 300);

  bench::banner("Figure 6 - public key sampling bandwidth (KB/cycle, n=" +
                    std::to_string(nodes) + ")",
                "<= ~3 KB/cycle; grows with Pi; P-nodes above N-nodes; heavier when "
                "P-nodes are scarcer");

  const struct {
    double natted;
    const char* name;
  } mixes[] = {{0.8, "N:80%-P:20%"}, {0.7, "N:70%-P:30%"}, {0.5, "N:50%-P:50%"}};

  for (const auto& mix : mixes) {
    std::printf("\n--- population %s ---\n", mix.name);
    Table t({"config", "N up", "N down", "P up", "P down"});
    std::vector<Fig6Row> rows;
    rows.push_back(run_config(nodes, mix.natted, 0, false, "unbiased (no keys)"));
    rows.push_back(run_config(nodes, mix.natted, 0, true, "unbiased + KS"));
    for (std::size_t pi = 1; pi <= 3; ++pi) {
      rows.push_back(
          run_config(nodes, mix.natted, pi, true, "Pi=" + std::to_string(pi) + " + KS"));
    }
    for (const auto& r : rows) {
      t.add_row({r.label, Table::num(r.n_up_kb, 2), Table::num(r.n_down_kb, 2),
                 Table::num(r.p_up_kb, 2), Table::num(r.p_down_kb, 2)});
    }
    std::printf("%s", t.render().c_str());
  }
  std::printf("\nshape-check: key sampling adds ~1 KB/cycle per direction (one 1 KB key\n"
              "sent and one received per exchange); all values within small multiples\n"
              "of the paper's 2.5 KB/cycle envelope.\n");
  return 0;
}

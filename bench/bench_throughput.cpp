// bench_throughput — machine-readable crypto + event-loop throughput.
//
// Seeds the bench trajectory with durable numbers: RSA private ops/sec with
// the plain path vs the CRT fast path, sealed envelopes/sec, raw simulator
// events/sec, and the wall-clock of the paper-scale scenario (1k nodes, 8
// groups, 30 virtual minutes). Emits BENCH_crypto.json and BENCH_sim.json
// into --json=<dir> (default ".") so CI can diff runs against the committed
// baseline at the repo root.
//
//   bench_throughput [--quick] [--json=<dir>] [--nodes=1000] [--groups=8]
//                    [--minutes=30]
//
// --quick shrinks every measurement for CI smoke runs (the JSON then
// carries "quick": true so it is never mistaken for a baseline).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "crypto/envelope.hpp"
#include "crypto/rsa.hpp"
#include "common/stats.hpp"
#include "net/udp.hpp"
#include "store/journal.hpp"
#include "telemetry/health.hpp"
#include "telemetry/registry.hpp"
#include "whisper/keypool.hpp"
#include "whisper/realnet.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Run `op` repeatedly for ~`budget_s` seconds; returns ops/sec.
double ops_per_sec(double budget_s, const std::function<void()>& op) {
  // Warm-up (first call builds Montgomery caches; that amortized cost is
  // exactly what the fast path is about, so exclude it like any warm-up).
  op();
  std::uint64_t iters = 0;
  const auto start = Clock::now();
  double elapsed = 0;
  do {
    op();
    ++iters;
    elapsed = seconds_since(start);
  } while (elapsed < budget_s);
  return static_cast<double>(iters) / elapsed;
}

}  // namespace

namespace {

/// --backend=udp: measure the real UDP/epoll backend on loopback and emit
/// BENCH_net.json. Three measurements: raw framed ping-pong RTT through
/// the epoll loop, a one-way datagram blast (socket-buffer-bound delivery
/// rate), and the WHISPER-level number — onion-routed application round
/// trips through a real mesh (S -> mix A -> mix B -> D and back).
int run_udp_bench(bool quick, const std::string& json_dir) {
  using namespace whisper;
  bench::banner("UDP backend throughput - loopback RTT + delivery rate",
                "not a paper figure; real-network floor for BENCH_net.json");

  bench::Json net_json;
  net_json.put("schema", "whisper.bench.net/v1");
  net_json.put("quick", quick);

  // Serial ping-pong: one round trip in flight, RTT sampled per trip.
  // `stats_interval` > 0 additionally runs whisper_noded's stats-export
  // duty cycle on a timer (registry flatten + delta encode + atomic file
  // publish) so its overhead on the hot loop is measurable. The bench
  // exports at 5 ms — 200x noded's default cadence — so the CI gate
  // (overhead <= 3%) is conservative.
  struct PingPongResult {
    double msgs_per_sec = 0;
    std::size_t trips = 0;
    whisper::Samples rtt_us;
    std::uint64_t stats_exports = 0;
  };
  auto pingpong = [&](std::size_t trips,
                      net::Time stats_interval) -> std::optional<PingPongResult> {
    net::UdpBackend backend;
    auto a = backend.reserve_endpoint();
    auto b = backend.reserve_endpoint();
    if (!a || !b) {
      std::fprintf(stderr, "bind: %s\n", backend.last_error().c_str());
      return std::nullopt;
    }
    const Bytes payload(64, 0x5a);
    PingPongResult res;
    net::Time sent_at = 0;
    backend.attach(*b, [&](const net::Datagram& d) {
      backend.send(*b, d.src, d.payload, net::Proto::kApp);
    });
    backend.attach(*a, [&](const net::Datagram&) {
      res.rtt_us.add(static_cast<double>(backend.now() - sent_at));
      if (++res.trips < trips) {
        sent_at = backend.now();
        backend.send(*a, *b, payload, net::Proto::kApp);
      } else {
        backend.request_stop();
      }
    });

    telemetry::Registry registry;
    telemetry::HealthExporter exporter(&registry);
    const std::string stats_path = json_dir + "/.bench_stats.tmp";
    std::function<void()> publish = [&] {
      if (backend.stop_requested()) return;
      // The same work noded does per tick: refresh a few gauges, flatten
      // the registry into a delta record, publish atomically.
      registry.counter("bench.pingpong.trips").add(1);
      registry.gauge("bench.backlog.depth").set(static_cast<double>(res.trips));
      telemetry::HealthSnapshot snap;
      snap.node = 1;
      snap.pid = 1;
      snap.seq = 0;  // exporter fills
      snap.now_us = backend.now();
      const Bytes rec = exporter.next(snap);
      std::string err;
      (void)store::atomic_publish_file(stats_path, rec, &err);
      ++res.stats_exports;
      backend.schedule_after(stats_interval, publish);
    };
    if (stats_interval > 0) backend.schedule_after(stats_interval, publish);

    const auto start = Clock::now();
    sent_at = backend.now();
    backend.send(*a, *b, payload, net::Proto::kApp);
    backend.run();
    const double elapsed = seconds_since(start);
    res.msgs_per_sec = static_cast<double>(2 * res.trips) / elapsed;
    if (stats_interval > 0) std::remove(stats_path.c_str());
    return res;
  };

  {
    const std::size_t trips = quick ? 2'000 : 20'000;
    auto base = pingpong(trips, 0);
    if (!base) return 1;
    bench::Json j;
    j.put("round_trips", static_cast<std::uint64_t>(base->trips));
    j.put("payload_bytes", std::uint64_t{64});
    j.put("msgs_per_sec", base->msgs_per_sec);
    j.put("rtt_p50_us", base->rtt_us.percentile(50));
    j.put("rtt_p95_us", base->rtt_us.percentile(95));
    net_json.put("udp_pingpong", j);
    std::printf("ping-pong: %.0f msgs/s, RTT p50 %.0f us / p95 %.0f us (%zu trips)\n",
                base->msgs_per_sec, base->rtt_us.percentile(50),
                base->rtt_us.percentile(95), base->trips);

    // Stats-export overhead: same loop with the exporter ticking at 5 ms.
    // Longer runs than the RTT measurement (rates over a few ms are all
    // scheduler noise) and best-of-3 per side, so a hiccup on either run
    // cannot fake an overhead regression (or hide one).
    const std::size_t ov_trips = quick ? 30'000 : 100'000;
    double off = 0;
    double on = 0;
    std::uint64_t exports = 0;
    for (int i = 0; i < 3; ++i) {
      if (auto r = pingpong(ov_trips, 0)) off = std::max(off, r->msgs_per_sec);
    }
    for (int i = 0; i < 3; ++i) {
      if (auto r = pingpong(ov_trips, 5 * net::kMillisecond)) {
        if (r->msgs_per_sec > on) {
          on = r->msgs_per_sec;
          exports = r->stats_exports;
        }
      }
    }
    if (on <= 0) return 1;
    const double stressed_pct = off > 0 ? (off - on) / off * 100.0 : 0.0;
    // Per-export stall, from the wall-time delta the exports added; then
    // express it against the 1 s cadence whisper_noded ships with. That is
    // the number the CI gate holds under 3%: a sensitive detector (5 ms
    // stress exposes per-export cost 200x amplified) reported at honest
    // deployment scale.
    const double msgs = static_cast<double>(2 * ov_trips);
    const double per_export_us =
        exports > 0
            ? std::max(0.0, (msgs / on - msgs / off) * 1e6 /
                                static_cast<double>(exports))
            : 0.0;
    const double overhead_pct = per_export_us / 1e6 * 100.0;  // of a 1 s tick
    bench::Json s;
    s.put("msgs_per_sec_off", off);
    s.put("msgs_per_sec_on", on);
    s.put("stats_interval_ms", std::uint64_t{5});
    s.put("stats_exports", exports);
    s.put("stressed_overhead_pct", stressed_pct);
    s.put("per_export_us", per_export_us);
    s.put("overhead_pct", overhead_pct);
    net_json.put("stats_export", s);
    std::printf("stats export @5ms stress: %.0f -> %.0f msgs/s (%.2f%%), "
                "%.0f us/export => %.3f%% overhead at the 1 s default\n",
                off, on, stressed_pct, per_export_us, overhead_pct);
  }

  {
    // One-way blast: how fast the loop moves datagrams when the sender
    // never waits. Loopback still drops on socket-buffer overflow; the
    // delivered rate is the honest number.
    net::UdpBackend backend;
    auto a = backend.reserve_endpoint();
    auto b = backend.reserve_endpoint();
    if (!a || !b) {
      std::fprintf(stderr, "bind: %s\n", backend.last_error().c_str());
      return 1;
    }
    const std::size_t batch = 32;
    const std::size_t total = quick ? 20'000 : 200'000;
    const Bytes payload(256, 0x3c);
    backend.attach(*a, [](const net::Datagram&) {});
    backend.attach(*b, [](const net::Datagram&) {});
    const auto start = Clock::now();
    std::size_t sent = 0;
    while (sent < total) {
      for (std::size_t i = 0; i < batch && sent < total; ++i, ++sent) {
        backend.send(*a, *b, payload, net::Proto::kApp);
      }
      backend.poll(0);  // drain between bursts
    }
    const net::Time settle = backend.now() + 200 * net::kMillisecond;
    while (backend.now() < settle) backend.poll(net::kMillisecond);
    const double elapsed = seconds_since(start);
    const double delivered_per_sec =
        static_cast<double>(backend.packets_delivered()) / elapsed;
    bench::Json j;
    j.put("datagrams", static_cast<std::uint64_t>(total));
    j.put("payload_bytes", static_cast<std::uint64_t>(payload.size()));
    j.put("delivered", backend.packets_delivered());
    j.put("delivered_per_sec", delivered_per_sec);
    net_json.put("udp_blast", j);
    std::printf("blast: %llu/%zu delivered, %.0f msgs/s\n",
                (unsigned long long)backend.packets_delivered(), total,
                delivered_per_sec);
  }

  {
    // Onion round trips on a real mesh: the full WHISPER data path (RSA
    // onion seal/peel at every hop) over actual UDP sockets.
    UdpMesh mesh;
    constexpr std::size_t kMeshNodes = 6;
    for (std::size_t i = 0; i < kMeshNodes; ++i) {
      if (mesh.spawn_node() == nullptr) {
        std::fprintf(stderr, "mesh: %s\n", mesh.backend().last_error().c_str());
        return 1;
      }
    }
    mesh.run_for(4 * net::kSecond);  // substrate convergence
    auto nodes = mesh.nodes();
    WhisperNode* alice = nodes[0];
    WhisperNode* bob = nodes[1];
    const GroupId gid{1};
    crypto::Drbg drbg(42);
    ppss::Ppss& ag = alice->create_group(gid, crypto::RsaKeyPair::generate(512, drbg));
    auto invitation = ag.invite(bob->id());
    ppss::Ppss& bg = bob->join_group(gid, *invitation, ag.self_descriptor());
    mesh.run_for(3 * net::kSecond);

    const std::size_t trips = quick ? 20 : 100;
    whisper::Samples rtt_us;
    net::Time sent_at = 0;
    std::size_t done = 0;
    const Bytes payload(64, 0x77);
    bg.on_app_message = [&](const wcl::RemotePeer& from, BytesView p) {
      bg.send_app_to(from, Bytes(p.begin(), p.end()));
    };
    ag.on_app_message = [&](const wcl::RemotePeer&, BytesView) {
      rtt_us.add(static_cast<double>(mesh.clock().now() - sent_at));
      if (++done < trips) {
        sent_at = mesh.clock().now();
        ag.send_app_to(bg.self_descriptor(), payload);
      } else {
        mesh.backend().request_stop();
      }
    };
    if (!bg.joined()) {
      std::fprintf(stderr, "mesh: member failed to join within warm-up\n");
      return 1;
    }
    const auto start = Clock::now();
    sent_at = mesh.clock().now();
    ag.send_app_to(bg.self_descriptor(), payload);
    mesh.backend().schedule_after(60 * net::kSecond,
                                  [&] { mesh.backend().request_stop(); });
    // A round trip can die for good (all alternative mixes exhausted); the
    // serial driver would stall forever. Re-kick when progress stops for a
    // second — the duplicate trip is still a real onion round trip. Every
    // rekick is a lost message on loopback, so the count is reported in
    // BENCH_net.json: a regression that drops trips shows up there instead
    // of being silently absorbed by the watchdog.
    std::size_t last_seen = 0;
    std::size_t rekicks = 0;
    std::function<void()> watchdog = [&] {
      if (mesh.backend().stop_requested() || done >= trips) return;
      if (done == last_seen) {
        ++rekicks;
        sent_at = mesh.clock().now();
        ag.send_app_to(bg.self_descriptor(), payload);
      }
      last_seen = done;
      mesh.backend().schedule_after(net::kSecond, watchdog);
    };
    mesh.backend().schedule_after(net::kSecond, watchdog);
    mesh.backend().run();
    const double elapsed = seconds_since(start);
    bench::Json j;
    j.put("mesh_nodes", static_cast<std::uint64_t>(kMeshNodes));
    j.put("round_trips", static_cast<std::uint64_t>(done));
    j.put("payload_bytes", static_cast<std::uint64_t>(payload.size()));
    j.put("msgs_per_sec", static_cast<double>(2 * done) / elapsed);
    j.put("rtt_p50_us", rtt_us.percentile(50));
    j.put("rtt_p95_us", rtt_us.percentile(95));
    j.put("watchdog_rekicks", static_cast<std::uint64_t>(rekicks));
    net_json.put("onion_rtt", j);
    std::printf("onion: %zu trips through %zu-node mesh, RTT p50 %.0f us / p95 %.0f us, "
                "%zu watchdog rekicks\n",
                done, kMeshNodes, rtt_us.percentile(50), rtt_us.percentile(95), rekicks);
    if (done < trips) {
      std::fprintf(stderr, "onion: only %zu/%zu trips completed\n", done, trips);
      return 1;
    }
  }

  const std::string net_path = json_dir + "/BENCH_net.json";
  if (!bench::write_json_file(net_path, net_json)) {
    std::fprintf(stderr, "cannot write %s\n", net_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", net_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace whisper;
  const bool quick = bench::arg_flag(argc, argv, "quick");
  const std::string json_dir = bench::arg_str(argc, argv, "json", ".");
  if (bench::arg_str(argc, argv, "backend", "sim") == "udp") {
    return run_udp_bench(quick, json_dir);
  }
  const std::size_t nodes = bench::arg_size(argc, argv, "nodes", quick ? 100 : 1000);
  const std::size_t groups = bench::arg_size(argc, argv, "groups", quick ? 2 : 8);
  const std::size_t minutes = bench::arg_size(argc, argv, "minutes", quick ? 5 : 30);
  const double budget_s = quick ? 0.05 : 0.5;

  bench::banner("Throughput baseline - RSA plain vs CRT, envelopes/sec, events/sec",
                "not a paper figure; machine-readable perf floor for CI");

  // ---- Crypto: plain vs CRT private ops, public ops, envelopes. ----
  bench::Json crypto_json;
  crypto_json.put("schema", "whisper.bench.crypto/v1");
  crypto_json.put("quick", quick);
  for (const std::size_t bits : {std::size_t{512}, std::size_t{1024}}) {
    crypto::Drbg keyseed(bits);
    const crypto::RsaKeyPair key = crypto::RsaKeyPair::generate(bits, keyseed);
    // Same key with the CRT material stripped: private ops fall back to the
    // single full-size exponentiation (the pre-fast-path behaviour).
    crypto::RsaKeyPair plain_key{key.pub, key.d};

    crypto::Drbg drbg(7);
    const Bytes msg(16, 0xaa);
    const Bytes ct = crypto::rsa_encrypt(key.pub, msg, drbg);

    const double dec_plain = ops_per_sec(budget_s, [&] { crypto::rsa_decrypt(plain_key, ct); });
    const double dec_crt = ops_per_sec(budget_s, [&] { crypto::rsa_decrypt(key, ct); });
    const double sign_plain = ops_per_sec(budget_s, [&] { crypto::rsa_sign(plain_key, msg); });
    const double sign_crt = ops_per_sec(budget_s, [&] { crypto::rsa_sign(key, msg); });
    const double enc = ops_per_sec(budget_s, [&] { crypto::rsa_encrypt(key.pub, msg, drbg); });

    bench::Json j;
    j.put("decrypt_plain_ops_per_sec", dec_plain);
    j.put("decrypt_crt_ops_per_sec", dec_crt);
    j.put("decrypt_crt_speedup", dec_crt / dec_plain);
    j.put("sign_plain_ops_per_sec", sign_plain);
    j.put("sign_crt_ops_per_sec", sign_crt);
    j.put("sign_crt_speedup", sign_crt / sign_plain);
    j.put("encrypt_ops_per_sec", enc);
    crypto_json.put("rsa_" + std::to_string(bits), j);
    std::printf("rsa-%zu: decrypt %.0f -> %.0f ops/s (%.2fx CRT), sign %.0f -> %.0f ops/s "
                "(%.2fx), encrypt %.0f ops/s\n",
                bits, dec_plain, dec_crt, dec_crt / dec_plain, sign_plain, sign_crt,
                sign_crt / sign_plain, enc);
  }
  {
    const crypto::RsaKeyPair& key = pooled_keypair(0, 512);
    crypto::Drbg drbg(11);
    const Bytes payload(256, 0x2f);
    const Bytes env = crypto::envelope_seal(key.pub, payload, drbg);
    const double seal = ops_per_sec(budget_s, [&] { crypto::envelope_seal(key.pub, payload, drbg); });
    const double open = ops_per_sec(budget_s, [&] { crypto::envelope_open(key, env); });
    bench::Json j;
    j.put("payload_bytes", std::uint64_t{256});
    j.put("key_bits", std::uint64_t{512});
    j.put("seal_ops_per_sec", seal);
    j.put("open_ops_per_sec", open);
    crypto_json.put("envelope", j);
    std::printf("envelope-512/256B: seal %.0f ops/s, open %.0f ops/s\n", seal, open);
  }

  // ---- Simulator: raw event dispatch, then the paper-scale scenario. ----
  bench::Json sim_json;
  sim_json.put("schema", "whisper.bench.sim/v1");
  sim_json.put("quick", quick);
  {
    // Self-rescheduling timer mesh: hammer schedule/cancel/step with zero
    // per-event work, isolating event-loop overhead.
    sim::Simulator s;
    constexpr std::size_t kChains = 64;
    std::vector<std::function<void()>> chains(kChains);
    std::vector<net::TimerId> decoys(kChains, 0);
    for (std::size_t c = 0; c < kChains; ++c) {
      chains[c] = [&, c] {
        s.cancel(decoys[c]);  // exercise the cancel path every event
        decoys[c] = s.schedule_after(1000, [] {});
        s.schedule_after(1 + c % 7, chains[c]);
      };
      s.schedule_at(c, chains[c]);
    }
    const std::uint64_t target = quick ? 200'000 : 2'000'000;
    const auto start = Clock::now();
    while (s.executed_events() < target) s.step();
    const double elapsed = seconds_since(start);
    const double events_per_sec = static_cast<double>(s.executed_events()) / elapsed;
    bench::Json j;
    j.put("events_executed", s.executed_events());
    j.put("events_cancelled", s.cancelled_events());
    j.put("events_per_sec", events_per_sec);
    sim_json.put("event_loop", j);
    std::printf("event loop: %.2fM events/s (with a cancel per event)\n", events_per_sec / 1e6);
  }
  {
    // The ROADMAP scenario: 1k nodes, 8 groups, 30 virtual minutes. All
    // group traffic rides the WCL, so the run is dominated by RSA private
    // ops on the P-node mixes.
    TestbedConfig cfg;
    cfg.initial_nodes = nodes;
    cfg.natted_fraction = 0.7;
    cfg.latency = "cluster";
    cfg.node.pss.pi_min_public = 3;
    cfg.node.wcl.pi = 3;
    cfg.seed = 7;
    const auto start = Clock::now();
    WhisperTestbed tb(cfg);
    Rng rng(cfg.seed ^ 0x51b);
    tb.run_for(5 * net::kMinute);
    std::vector<ppss::Ppss*> leaders;
    std::vector<GroupId> gids;
    auto publics = tb.alive_public_nodes();
    for (std::size_t g = 0; g < groups; ++g) {
      crypto::Drbg d(cfg.seed + g);
      leaders.push_back(&publics[g % publics.size()]->create_group(
          GroupId{5000 + g}, crypto::RsaKeyPair::generate(512, d)));
      gids.push_back(GroupId{5000 + g});
    }
    for (WhisperNode* node : tb.alive_nodes()) {
      const std::size_t g = rng.pick_index(gids);
      if (node->id() == leaders[g]->self()) continue;
      if (auto accr = leaders[g]->invite(node->id())) {
        node->join_group(gids[g], *accr, leaders[g]->self_descriptor());
      }
    }
    tb.run_for(minutes * net::kMinute);
    const double wall_s = seconds_since(start);
    const double events_per_wall_sec =
        static_cast<double>(tb.executed_events()) / wall_s;
    bench::Json j;
    j.put("nodes", static_cast<std::uint64_t>(nodes));
    j.put("groups", static_cast<std::uint64_t>(groups));
    j.put("virtual_minutes", static_cast<std::uint64_t>(minutes));
    j.put("wall_seconds", wall_s);
    j.put("sim_events_executed", tb.executed_events());
    j.put("sim_events_per_wall_sec", events_per_wall_sec);
    sim_json.put("scenario", j);
    {
      // Attribute the 72k-vs-2.37M events/sec gap: wall-clock spent inside
      // each subsystem's inbound handler and in individual crypto ops,
      // summed across every node ever spawned. The buckets overlap by
      // design (ppss_handler nests inside wcl_handler; crypto ops run
      // inside handlers and send paths), so shares are reported against
      // total wall, not against each other.
      double spent_s[static_cast<std::size_t>(net::CpuCategory::kCount)] = {};
      std::uint64_t ops[static_cast<std::size_t>(net::CpuCategory::kCount)] = {};
      for (WhisperNode* node : tb.all_nodes()) {
        for (std::size_t c = 0; c < static_cast<std::size_t>(net::CpuCategory::kCount); ++c) {
          const auto cat = static_cast<net::CpuCategory>(c);
          spent_s[c] += static_cast<double>(node->cpu().spent(cat)) / 1e6;
          ops[c] += node->cpu().ops(cat);
        }
      }
      bench::Json split;
      for (std::size_t c = 0; c < static_cast<std::size_t>(net::CpuCategory::kCount); ++c) {
        const auto cat = static_cast<net::CpuCategory>(c);
        bench::Json e;
        e.put("seconds", spent_s[c]);
        e.put("ops", ops[c]);
        e.put("share_of_wall", spent_s[c] / wall_s);
        split.put(net::cpu_category_name(cat), e);
      }
      split.put("note",
                "overlapping buckets: ppss_handler nests inside wcl_handler; "
                "crypto categories time individual ops wherever they run");
      sim_json.put("cpu_split", split);
      std::printf("cpu split: pss %.1fs, keys %.1fs, wcl %.1fs (ppss %.1fs), "
                  "crypto %.1fs of %.1fs wall\n",
                  spent_s[static_cast<std::size_t>(net::CpuCategory::kPssHandler)],
                  spent_s[static_cast<std::size_t>(net::CpuCategory::kKeysHandler)],
                  spent_s[static_cast<std::size_t>(net::CpuCategory::kWclHandler)],
                  spent_s[static_cast<std::size_t>(net::CpuCategory::kPpssHandler)],
                  spent_s[0] + spent_s[1] + spent_s[2] + spent_s[3], wall_s);
    }
    if (!quick && nodes == 1000 && groups == 8 && minutes == 30) {
      // Reference point: the identical scenario measured at the pre-fast-path
      // commit (plain RSA private ops, hash-set cancel bookkeeping) took
      // 58.4 s wall-clock on the same machine that produced the committed
      // baseline (see EXPERIMENTS.md).
      const double seed_wall_s = 58.4;
      bench::Json b;
      b.put("wall_seconds", seed_wall_s);
      b.put("speedup_vs_seed", seed_wall_s / wall_s);
      b.put("note", "same scenario at the pre-fast-path commit, same machine");
      sim_json.put("seed_baseline", b);
      std::printf("scenario %zu nodes / %zu groups / %zu min: %.1f s wall (seed: %.1f s, "
                  "%.2fx)\n",
                  nodes, groups, minutes, wall_s, seed_wall_s, seed_wall_s / wall_s);
    } else {
      std::printf("scenario %zu nodes / %zu groups / %zu min: %.1f s wall\n", nodes, groups,
                  minutes, wall_s);
    }
  }

  const std::string crypto_path = json_dir + "/BENCH_crypto.json";
  const std::string sim_path = json_dir + "/BENCH_sim.json";
  if (!bench::write_json_file(crypto_path, crypto_json) ||
      !bench::write_json_file(sim_path, sim_json)) {
    std::fprintf(stderr, "cannot write %s / %s\n", crypto_path.c_str(), sim_path.c_str());
    return 1;
  }
  std::printf("wrote %s and %s\n", crypto_path.c_str(), sim_path.c_str());
  return 0;
}

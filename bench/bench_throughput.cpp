// bench_throughput — machine-readable crypto + event-loop throughput.
//
// Seeds the bench trajectory with durable numbers: RSA private ops/sec with
// the plain path vs the CRT fast path, sealed envelopes/sec, raw simulator
// events/sec, and the wall-clock of the paper-scale scenario (1k nodes, 8
// groups, 30 virtual minutes). Emits BENCH_crypto.json and BENCH_sim.json
// into --json=<dir> (default ".") so CI can diff runs against the committed
// baseline at the repo root.
//
//   bench_throughput [--quick] [--json=<dir>] [--nodes=1000] [--groups=8]
//                    [--minutes=30]
//
// --quick shrinks every measurement for CI smoke runs (the JSON then
// carries "quick": true so it is never mistaken for a baseline).
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "crypto/envelope.hpp"
#include "crypto/rsa.hpp"
#include "whisper/keypool.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Run `op` repeatedly for ~`budget_s` seconds; returns ops/sec.
double ops_per_sec(double budget_s, const std::function<void()>& op) {
  // Warm-up (first call builds Montgomery caches; that amortized cost is
  // exactly what the fast path is about, so exclude it like any warm-up).
  op();
  std::uint64_t iters = 0;
  const auto start = Clock::now();
  double elapsed = 0;
  do {
    op();
    ++iters;
    elapsed = seconds_since(start);
  } while (elapsed < budget_s);
  return static_cast<double>(iters) / elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace whisper;
  const bool quick = bench::arg_flag(argc, argv, "quick");
  const std::string json_dir = bench::arg_str(argc, argv, "json", ".");
  const std::size_t nodes = bench::arg_size(argc, argv, "nodes", quick ? 100 : 1000);
  const std::size_t groups = bench::arg_size(argc, argv, "groups", quick ? 2 : 8);
  const std::size_t minutes = bench::arg_size(argc, argv, "minutes", quick ? 5 : 30);
  const double budget_s = quick ? 0.05 : 0.5;

  bench::banner("Throughput baseline - RSA plain vs CRT, envelopes/sec, events/sec",
                "not a paper figure; machine-readable perf floor for CI");

  // ---- Crypto: plain vs CRT private ops, public ops, envelopes. ----
  bench::Json crypto_json;
  crypto_json.put("schema", "whisper.bench.crypto/v1");
  crypto_json.put("quick", quick);
  for (const std::size_t bits : {std::size_t{512}, std::size_t{1024}}) {
    crypto::Drbg keyseed(bits);
    const crypto::RsaKeyPair key = crypto::RsaKeyPair::generate(bits, keyseed);
    // Same key with the CRT material stripped: private ops fall back to the
    // single full-size exponentiation (the pre-fast-path behaviour).
    crypto::RsaKeyPair plain_key{key.pub, key.d};

    crypto::Drbg drbg(7);
    const Bytes msg(16, 0xaa);
    const Bytes ct = crypto::rsa_encrypt(key.pub, msg, drbg);

    const double dec_plain = ops_per_sec(budget_s, [&] { crypto::rsa_decrypt(plain_key, ct); });
    const double dec_crt = ops_per_sec(budget_s, [&] { crypto::rsa_decrypt(key, ct); });
    const double sign_plain = ops_per_sec(budget_s, [&] { crypto::rsa_sign(plain_key, msg); });
    const double sign_crt = ops_per_sec(budget_s, [&] { crypto::rsa_sign(key, msg); });
    const double enc = ops_per_sec(budget_s, [&] { crypto::rsa_encrypt(key.pub, msg, drbg); });

    bench::Json j;
    j.put("decrypt_plain_ops_per_sec", dec_plain);
    j.put("decrypt_crt_ops_per_sec", dec_crt);
    j.put("decrypt_crt_speedup", dec_crt / dec_plain);
    j.put("sign_plain_ops_per_sec", sign_plain);
    j.put("sign_crt_ops_per_sec", sign_crt);
    j.put("sign_crt_speedup", sign_crt / sign_plain);
    j.put("encrypt_ops_per_sec", enc);
    crypto_json.put("rsa_" + std::to_string(bits), j);
    std::printf("rsa-%zu: decrypt %.0f -> %.0f ops/s (%.2fx CRT), sign %.0f -> %.0f ops/s "
                "(%.2fx), encrypt %.0f ops/s\n",
                bits, dec_plain, dec_crt, dec_crt / dec_plain, sign_plain, sign_crt,
                sign_crt / sign_plain, enc);
  }
  {
    const crypto::RsaKeyPair& key = pooled_keypair(0, 512);
    crypto::Drbg drbg(11);
    const Bytes payload(256, 0x2f);
    const Bytes env = crypto::envelope_seal(key.pub, payload, drbg);
    const double seal = ops_per_sec(budget_s, [&] { crypto::envelope_seal(key.pub, payload, drbg); });
    const double open = ops_per_sec(budget_s, [&] { crypto::envelope_open(key, env); });
    bench::Json j;
    j.put("payload_bytes", std::uint64_t{256});
    j.put("key_bits", std::uint64_t{512});
    j.put("seal_ops_per_sec", seal);
    j.put("open_ops_per_sec", open);
    crypto_json.put("envelope", j);
    std::printf("envelope-512/256B: seal %.0f ops/s, open %.0f ops/s\n", seal, open);
  }

  // ---- Simulator: raw event dispatch, then the paper-scale scenario. ----
  bench::Json sim_json;
  sim_json.put("schema", "whisper.bench.sim/v1");
  sim_json.put("quick", quick);
  {
    // Self-rescheduling timer mesh: hammer schedule/cancel/step with zero
    // per-event work, isolating event-loop overhead.
    sim::Simulator s;
    constexpr std::size_t kChains = 64;
    std::vector<std::function<void()>> chains(kChains);
    std::vector<sim::TimerId> decoys(kChains, 0);
    for (std::size_t c = 0; c < kChains; ++c) {
      chains[c] = [&, c] {
        s.cancel(decoys[c]);  // exercise the cancel path every event
        decoys[c] = s.schedule_after(1000, [] {});
        s.schedule_after(1 + c % 7, chains[c]);
      };
      s.schedule_at(c, chains[c]);
    }
    const std::uint64_t target = quick ? 200'000 : 2'000'000;
    const auto start = Clock::now();
    while (s.executed_events() < target) s.step();
    const double elapsed = seconds_since(start);
    const double events_per_sec = static_cast<double>(s.executed_events()) / elapsed;
    bench::Json j;
    j.put("events_executed", s.executed_events());
    j.put("events_cancelled", s.cancelled_events());
    j.put("events_per_sec", events_per_sec);
    sim_json.put("event_loop", j);
    std::printf("event loop: %.2fM events/s (with a cancel per event)\n", events_per_sec / 1e6);
  }
  {
    // The ROADMAP scenario: 1k nodes, 8 groups, 30 virtual minutes. All
    // group traffic rides the WCL, so the run is dominated by RSA private
    // ops on the P-node mixes.
    TestbedConfig cfg;
    cfg.initial_nodes = nodes;
    cfg.natted_fraction = 0.7;
    cfg.latency = "cluster";
    cfg.node.pss.pi_min_public = 3;
    cfg.node.wcl.pi = 3;
    cfg.seed = 7;
    const auto start = Clock::now();
    WhisperTestbed tb(cfg);
    Rng rng(cfg.seed ^ 0x51b);
    tb.run_for(5 * sim::kMinute);
    std::vector<ppss::Ppss*> leaders;
    std::vector<GroupId> gids;
    auto publics = tb.alive_public_nodes();
    for (std::size_t g = 0; g < groups; ++g) {
      crypto::Drbg d(cfg.seed + g);
      leaders.push_back(&publics[g % publics.size()]->create_group(
          GroupId{5000 + g}, crypto::RsaKeyPair::generate(512, d)));
      gids.push_back(GroupId{5000 + g});
    }
    for (WhisperNode* node : tb.alive_nodes()) {
      const std::size_t g = rng.pick_index(gids);
      if (node->id() == leaders[g]->self()) continue;
      if (auto accr = leaders[g]->invite(node->id())) {
        node->join_group(gids[g], *accr, leaders[g]->self_descriptor());
      }
    }
    tb.run_for(minutes * sim::kMinute);
    const double wall_s = seconds_since(start);
    const double events_per_wall_sec =
        static_cast<double>(tb.simulator().executed_events()) / wall_s;
    bench::Json j;
    j.put("nodes", static_cast<std::uint64_t>(nodes));
    j.put("groups", static_cast<std::uint64_t>(groups));
    j.put("virtual_minutes", static_cast<std::uint64_t>(minutes));
    j.put("wall_seconds", wall_s);
    j.put("sim_events_executed", tb.simulator().executed_events());
    j.put("sim_events_per_wall_sec", events_per_wall_sec);
    sim_json.put("scenario", j);
    if (!quick && nodes == 1000 && groups == 8 && minutes == 30) {
      // Reference point: the identical scenario measured at the pre-fast-path
      // commit (plain RSA private ops, hash-set cancel bookkeeping) took
      // 58.4 s wall-clock on the same machine that produced the committed
      // baseline (see EXPERIMENTS.md).
      const double seed_wall_s = 58.4;
      bench::Json b;
      b.put("wall_seconds", seed_wall_s);
      b.put("speedup_vs_seed", seed_wall_s / wall_s);
      b.put("note", "same scenario at the pre-fast-path commit, same machine");
      sim_json.put("seed_baseline", b);
      std::printf("scenario %zu nodes / %zu groups / %zu min: %.1f s wall (seed: %.1f s, "
                  "%.2fx)\n",
                  nodes, groups, minutes, wall_s, seed_wall_s, seed_wall_s / wall_s);
    } else {
      std::printf("scenario %zu nodes / %zu groups / %zu min: %.1f s wall\n", nodes, groups,
                  minutes, wall_s);
    }
  }

  const std::string crypto_path = json_dir + "/BENCH_crypto.json";
  const std::string sim_path = json_dir + "/BENCH_sim.json";
  if (!bench::write_json_file(crypto_path, crypto_json) ||
      !bench::write_json_file(sim_path, sim_json)) {
    std::fprintf(stderr, "cannot write %s / %s\n", crypto_path.c_str(), sim_path.c_str());
    return 1;
  }
  std::printf("wrote %s and %s\n", crypto_path.c_str(), sim_path.c_str());
  return 0;
}

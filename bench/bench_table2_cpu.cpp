// Table II: CPU time per PPSS cycle spent in AES vs RSA, by node class.
//
// Paper setup: 1,000 nodes on the cluster, 1-minute PPSS cycle, Pi=3,
// 5 entries per exchanged view, 1 KB public keys (~20 KB view exchanges).
// Reported: average CPU microseconds/milliseconds per node per cycle.
// Expected shape: RSA dominates AES by orders of magnitude; P-nodes spend
// ~2x the total CPU of N-nodes and ~4x the RSA-decrypt time, because the
// WCL construction makes P-nodes act as mixes far more often.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace whisper;
  const std::size_t nodes = bench::arg_size(argc, argv, "nodes", 250);
  const std::size_t groups = bench::arg_size(argc, argv, "groups", 8);

  bench::banner("Table II - CPU per PPSS cycle: AES vs RSA, N- vs P-nodes (n=" +
                    std::to_string(nodes) + ")",
                "RSA >> AES; P-nodes ~2x total CPU of N-nodes and ~4x the RSA "
                "decrypt time (mix role)");

  TestbedConfig cfg;
  cfg.initial_nodes = nodes;
  cfg.natted_fraction = 0.7;
  cfg.latency = "cluster";
  cfg.node.pss.pi_min_public = 3;
  cfg.node.wcl.pi = 3;
  cfg.seed = 800;
  WhisperTestbed tb(cfg);
  Rng rng(801);

  tb.run_for(5 * net::kMinute);
  // Group setup: leaders on P-nodes, every node subscribes to one group.
  std::vector<ppss::Ppss*> leaders;
  std::vector<GroupId> gids;
  auto publics = tb.alive_public_nodes();
  for (std::size_t g = 0; g < groups; ++g) {
    const GroupId gid{8000 + g};
    crypto::Drbg d(900 + g);
    leaders.push_back(
        &publics[g % publics.size()]->create_group(gid, crypto::RsaKeyPair::generate(512, d)));
    gids.push_back(gid);
  }
  for (WhisperNode* node : tb.alive_nodes()) {
    const std::size_t g = rng.pick_index(gids);
    if (node->id() == leaders[g]->self()) continue;
    auto accr = leaders[g]->invite(node->id());
    if (accr) node->join_group(gids[g], *accr, leaders[g]->self_descriptor());
  }
  tb.run_for(5 * net::kMinute);

  // Measurement window: reset meters, run whole PPSS cycles.
  for (WhisperNode* node : tb.alive_nodes()) node->cpu().reset();
  const std::size_t cycles = 10;
  tb.run_for(cycles * cfg.node.ppss.cycle);

  struct Acc {
    double aes_us = 0, rsa_enc_us = 0, rsa_dec_us = 0, rsa_sign_us = 0;
    std::size_t count = 0;
  } n_acc, p_acc;
  for (WhisperNode* node : tb.alive_nodes()) {
    Acc& acc = node->is_public() ? p_acc : n_acc;
    acc.aes_us += static_cast<double>(node->cpu().spent(net::CpuCategory::kAes));
    acc.rsa_enc_us += static_cast<double>(node->cpu().spent(net::CpuCategory::kRsaEncrypt));
    acc.rsa_dec_us += static_cast<double>(node->cpu().spent(net::CpuCategory::kRsaDecrypt));
    acc.rsa_sign_us += static_cast<double>(node->cpu().spent(net::CpuCategory::kRsaSign));
    ++acc.count;
  }

  auto per_cycle = [&](double total_us, std::size_t count) {
    return count == 0 ? 0.0 : total_us / static_cast<double>(count) / static_cast<double>(cycles);
  };
  const double cycle_us = static_cast<double>(cfg.node.ppss.cycle);

  Table t({"", "AES", "RSA (enc)", "RSA (dec)", "RSA (sig)", "Total", "% of cycle"});
  auto add = [&](const char* name, const Acc& acc) {
    const double aes = per_cycle(acc.aes_us, acc.count);
    const double enc = per_cycle(acc.rsa_enc_us, acc.count);
    const double dec = per_cycle(acc.rsa_dec_us, acc.count);
    const double sig = per_cycle(acc.rsa_sign_us, acc.count);
    const double total = aes + enc + dec + sig;
    t.add_row({name, Table::num(aes, 1) + " us", Table::num(enc / 1000.0, 3) + " ms",
               Table::num(dec / 1000.0, 3) + " ms", Table::num(sig / 1000.0, 3) + " ms",
               Table::num(total / 1000.0, 3) + " ms",
               Table::num(total / cycle_us * 100.0, 4) + "%"});
  };
  add("N-node", n_acc);
  add("P-node", p_acc);
  std::printf("%s", t.render().c_str());

  const double n_total = per_cycle(n_acc.aes_us + n_acc.rsa_enc_us + n_acc.rsa_dec_us +
                                       n_acc.rsa_sign_us, n_acc.count);
  const double p_total = per_cycle(p_acc.aes_us + p_acc.rsa_enc_us + p_acc.rsa_dec_us +
                                       p_acc.rsa_sign_us, p_acc.count);
  const double n_dec = per_cycle(n_acc.rsa_dec_us, n_acc.count);
  const double p_dec = per_cycle(p_acc.rsa_dec_us, p_acc.count);
  std::printf("\nshape-check:\n");
  std::printf("  P/N total CPU ratio = %.2fx (paper: 2.13x)\n",
              n_total > 0 ? p_total / n_total : 0.0);
  std::printf("  P/N RSA-decrypt ratio = %.2fx (paper: 4.12x, P-nodes act as mixes)\n",
              n_dec > 0 ? p_dec / n_dec : 0.0);
  std::printf("  (absolute values differ from the paper: different hardware and key size)\n");
  return 0;
}

// Figure 5: impact of the Π-biased PSS on clustering and in-degree.
//
// Paper setup: 1,000 nodes on the cluster, view size c=10, 70/30 N/P mix,
// Π in {0 (unbiased baseline), 1, 2, 3}. Reported: CDF of local clustering
// coefficients (expected: indistinguishable across Π) and in-degree CDFs
// split by node class (expected: P-node in-degree grows with Π, N-node
// in-degree shrinks slightly).
//
// Default run uses 300 nodes for wall-clock reasons; pass --nodes=1000 for
// the paper-scale run.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "pss/metrics.hpp"

namespace whisper {
namespace {

struct Fig5Row {
  std::size_t pi;
  double clustering_mean;
  double clustering_p90;
  double n_indegree_mean;
  double n_indegree_p90;
  double p_indegree_mean;
  double p_indegree_p90;
};

Fig5Row run_config(std::size_t n_nodes, std::size_t pi) {
  TestbedConfig cfg;
  cfg.initial_nodes = n_nodes;
  cfg.natted_fraction = 0.7;
  cfg.latency = "cluster";
  cfg.node.pss.view_size = 10;
  cfg.node.pss.pi_min_public = pi;
  cfg.seed = 500 + pi;
  WhisperTestbed tb(cfg);
  // PSS cycle is 10 s; let the overlay converge for 60 cycles.
  tb.run_for(10 * net::kMinute);

  auto graph = tb.overlay_snapshot();
  Samples clustering = pss::clustering_coefficients(graph);
  auto degrees = pss::in_degrees(graph);

  Samples n_deg, p_deg;
  for (WhisperNode* node : tb.alive_nodes()) {
    const double d = static_cast<double>(degrees[node->id()]);
    if (node->is_public()) {
      p_deg.add(d);
    } else {
      n_deg.add(d);
    }
  }

  return Fig5Row{pi,
                 clustering.mean(),
                 clustering.percentile(90),
                 n_deg.mean(),
                 n_deg.percentile(90),
                 p_deg.mean(),
                 p_deg.percentile(90)};
}

}  // namespace
}  // namespace whisper

int main(int argc, char** argv) {
  using namespace whisper;
  const std::size_t nodes = bench::arg_size(argc, argv, "nodes", 300);

  bench::banner(
      "Figure 5 - biased PSS: clustering & in-degree vs Pi (n=" + std::to_string(nodes) + ")",
      "clustering CDF identical for Pi=0..3; P-node in-degree grows with Pi, "
      "N-node in-degree slightly lower");

  Table t({"Pi", "clustering mean", "clustering p90", "N in-deg mean", "N in-deg p90",
           "P in-deg mean", "P in-deg p90"});
  double base_clustering = 0.0;
  double base_p_mean = 0.0;
  std::vector<Fig5Row> rows;
  for (std::size_t pi = 0; pi <= 3; ++pi) {
    Fig5Row row = run_config(nodes, pi);
    rows.push_back(row);
    if (pi == 0) {
      base_clustering = row.clustering_mean;
      base_p_mean = row.p_indegree_mean;
    }
    t.add_row({std::to_string(pi), Table::num(row.clustering_mean, 4),
               Table::num(row.clustering_p90, 4), Table::num(row.n_indegree_mean, 2),
               Table::num(row.n_indegree_p90, 2), Table::num(row.p_indegree_mean, 2),
               Table::num(row.p_indegree_p90, 2)});
  }
  std::printf("%s", t.render().c_str());

  std::printf("\nshape-check:\n");
  std::printf("  clustering(Pi=3)/clustering(Pi=0) = %.2f (paper: ~1.0, negligible impact)\n",
              rows[3].clustering_mean / (base_clustering > 0 ? base_clustering : 1));
  std::printf("  P-in-degree(Pi=3)/P-in-degree(Pi=0) = %.2f (paper: > 1, bias loads P-nodes)\n",
              rows[3].p_indegree_mean / (base_p_mean > 0 ? base_p_mean : 1));
  return 0;
}

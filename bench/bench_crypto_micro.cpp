// Crypto primitive micro-benchmarks (google-benchmark).
//
// These back the computational claims of Table II and Fig. 7: RSA private
// operations dominate AES by orders of magnitude, and onion build/peel
// costs are a few RSA operations plus AES over the body.
#include <benchmark/benchmark.h>

#include "crypto/aes128.hpp"
#include "crypto/bigint.hpp"
#include "crypto/envelope.hpp"
#include "crypto/onion.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"

namespace whisper::crypto {
namespace {

const RsaKeyPair& key(std::size_t bits) {
  static std::map<std::size_t, RsaKeyPair> keys;
  auto it = keys.find(bits);
  if (it == keys.end()) {
    Drbg d(bits);
    it = keys.emplace(bits, RsaKeyPair::generate(bits, d)).first;
  }
  return it->second;
}

void BM_Sha256(benchmark::State& state) {
  Bytes data(static_cast<std::size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(20 * 1024);

void BM_Aes128Ctr(benchmark::State& state) {
  AesKey k{};
  AesBlock iv{};
  Bytes data(static_cast<std::size_t>(state.range(0)), 0x7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aes128_ctr(k, iv, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Aes128Ctr)->Arg(64)->Arg(1024)->Arg(20 * 1024);

void BM_RsaKeygen(benchmark::State& state) {
  Drbg d(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RsaKeyPair::generate(static_cast<std::size_t>(state.range(0)), d));
  }
}
BENCHMARK(BM_RsaKeygen)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_RsaEncrypt(benchmark::State& state) {
  const auto& kp = key(static_cast<std::size_t>(state.range(0)));
  Drbg d(1);
  const Bytes msg(16, 0xaa);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsa_encrypt(kp.pub, msg, d));
  }
}
BENCHMARK(BM_RsaEncrypt)->Arg(512)->Arg(1024)->Arg(2048);

void BM_RsaDecrypt(benchmark::State& state) {
  const auto& kp = key(static_cast<std::size_t>(state.range(0)));
  Drbg d(2);
  const Bytes ct = rsa_encrypt(kp.pub, Bytes(16, 0xaa), d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsa_decrypt(kp, ct));
  }
}
BENCHMARK(BM_RsaDecrypt)->Arg(512)->Arg(1024)->Arg(2048)->Unit(benchmark::kMicrosecond);

void BM_RsaSign(benchmark::State& state) {
  const auto& kp = key(static_cast<std::size_t>(state.range(0)));
  const Bytes msg(64, 0x3c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsa_sign(kp, msg));
  }
}
BENCHMARK(BM_RsaSign)->Arg(512)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_RsaVerify(benchmark::State& state) {
  const auto& kp = key(static_cast<std::size_t>(state.range(0)));
  const Bytes msg(64, 0x3c);
  const Bytes sig = rsa_sign(kp, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsa_verify(kp.pub, msg, sig));
  }
}
BENCHMARK(BM_RsaVerify)->Arg(512)->Arg(1024);

void BM_EnvelopeSeal(benchmark::State& state) {
  const auto& kp = key(512);
  Drbg d(3);
  const Bytes payload(static_cast<std::size_t>(state.range(0)), 0x11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(envelope_seal(kp.pub, payload, d));
  }
}
BENCHMARK(BM_EnvelopeSeal)->Arg(256)->Arg(20 * 1024);

// Onion build: the paper's 2-mix path (S->A->B->D) over a 20 KB view
// exchange payload — exactly the WCL request cost of Fig. 7.
void BM_OnionBuild2Mixes(benchmark::State& state) {
  Drbg d(4);
  std::vector<OnionHop> path{{NodeId{1}, key(512).pub, {}},
                             {NodeId{2}, key(512).pub, {}},
                             {NodeId{3}, key(512).pub, {}}};
  const Bytes content(static_cast<std::size_t>(state.range(0)), 0x2f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(onion_build(path, content, d));
  }
}
BENCHMARK(BM_OnionBuild2Mixes)->Arg(256)->Arg(20 * 1024)->Unit(benchmark::kMicrosecond);

void BM_OnionPeelOneHop(benchmark::State& state) {
  Drbg d(5);
  std::vector<OnionHop> path{{NodeId{1}, key(512).pub, {}},
                             {NodeId{2}, key(512).pub, {}},
                             {NodeId{3}, key(512).pub, {}}};
  const OnionPacket pkt = onion_build(path, Bytes(1024, 0x2f), d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(onion_peel_header(key(512), pkt));
  }
}
BENCHMARK(BM_OnionPeelOneHop)->Unit(benchmark::kMicrosecond);

void BM_BigIntModExp(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  Drbg d(6);
  BigInt base = BigInt::from_bytes(d.bytes(bits / 8));
  BigInt exp = BigInt::from_bytes(d.bytes(bits / 8));
  BigInt mod = BigInt::from_bytes(d.bytes(bits / 8));
  if (!mod.is_odd()) mod = mod + BigInt{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(base.modexp(exp, mod));
  }
}
BENCHMARK(BM_BigIntModExp)->Arg(512)->Arg(1024)->Arg(2048)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace whisper::crypto

BENCHMARK_MAIN();

// Figure 8: bandwidth vs number of private groups per node.
//
// Paper setup: 400 nodes on PlanetLab, 120 private groups (each P-node
// creates and leads one), subscriptions per node swept 1..32 (log scale).
// Reported: distribution (stacked percentiles) of upload and download
// bandwidth, split by node class. Expected shape: bandwidth grows linearly
// with the number of subscribed groups; P-nodes above N-nodes.
#include <cstdio>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace whisper {
namespace {

struct Fig8Row {
  std::size_t groups_per_node;
  std::string n_up, n_down, p_up, p_down;
  double n_up_mean, p_up_mean;
};

Fig8Row run_config(std::size_t n_nodes, std::size_t n_groups, std::size_t subs) {
  TestbedConfig cfg;
  cfg.initial_nodes = n_nodes;
  cfg.natted_fraction = 0.7;
  cfg.latency = "planetlab";
  cfg.node.pss.pi_min_public = 3;
  cfg.node.wcl.pi = 3;
  cfg.seed = 1100 + subs;
  WhisperTestbed tb(cfg);
  Rng rng(cfg.seed ^ 0xabc);

  tb.run_for(5 * net::kMinute);
  // Every P-node leads one group (up to n_groups).
  std::vector<ppss::Ppss*> leaders;
  std::vector<GroupId> gids;
  auto publics = tb.alive_public_nodes();
  for (std::size_t g = 0; g < n_groups && g < publics.size(); ++g) {
    const GroupId gid{6000 + g};
    crypto::Drbg d(cfg.seed + g);
    leaders.push_back(
        &publics[g]->create_group(gid, crypto::RsaKeyPair::generate(512, d)));
    gids.push_back(gid);
  }
  // Each node subscribes to `subs` distinct random groups.
  for (WhisperNode* node : tb.alive_nodes()) {
    std::vector<std::size_t> order(gids.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.shuffle(order);
    std::size_t joined = 0;
    for (std::size_t g : order) {
      if (joined >= subs) break;
      if (node->id() == leaders[g]->self()) continue;
      auto accr = leaders[g]->invite(node->id());
      if (accr) {
        node->join_group(gids[g], *accr, leaders[g]->self_descriptor());
        ++joined;
      }
    }
  }
  tb.run_for(5 * net::kMinute);

  // Measure across complete PPSS cycles.
  tb.reset_traffic();
  const std::size_t cycles = 5;
  tb.run_for(cycles * cfg.node.ppss.cycle);
  const double window_s =
      static_cast<double>(cycles * cfg.node.ppss.cycle) / net::kSecond;

  Samples n_up, n_down, p_up, p_down;
  for (WhisperNode* node : tb.alive_nodes()) {
    const auto& c = tb.traffic(node->internal_endpoint());
    const double up = static_cast<double>(c.total_up()) / window_s / 1024.0;    // KB/s
    const double down = static_cast<double>(c.total_down()) / window_s / 1024.0;
    if (node->is_public()) {
      p_up.add(up);
      p_down.add(down);
    } else {
      n_up.add(up);
      n_down.add(down);
    }
  }
  return Fig8Row{subs,
                 format_stacked_percentiles(n_up),
                 format_stacked_percentiles(n_down),
                 format_stacked_percentiles(p_up),
                 format_stacked_percentiles(p_down),
                 n_up.mean(),
                 p_up.mean()};
}

}  // namespace
}  // namespace whisper

int main(int argc, char** argv) {
  using namespace whisper;
  const std::size_t nodes = bench::arg_size(argc, argv, "nodes", 120);
  const std::size_t n_groups = bench::arg_size(argc, argv, "groups", 24);
  const std::size_t max_subs = bench::arg_size(argc, argv, "max-subs", 8);

  bench::banner("Figure 8 - bandwidth vs groups-per-node (KB/s, n=" + std::to_string(nodes) +
                    ", planetlab)",
                "bandwidth grows linearly with subscribed groups; P-nodes above N-nodes; "
                "values stay in reasonable KB/s range");

  std::vector<std::pair<std::size_t, double>> scaling;
  for (std::size_t subs = 1; subs <= max_subs; subs *= 2) {
    Fig8Row row = run_config(nodes, n_groups, subs);
    std::printf("\n--- %zu group(s) per node ---\n", row.groups_per_node);
    std::printf("  N-nodes up:   %s\n", row.n_up.c_str());
    std::printf("  N-nodes down: %s\n", row.n_down.c_str());
    std::printf("  P-nodes up:   %s\n", row.p_up.c_str());
    std::printf("  P-nodes down: %s\n", row.p_down.c_str());
    scaling.emplace_back(subs, row.n_up_mean);
  }

  std::printf("\nshape-check (N-node mean upload KB/s vs subscriptions):\n");
  for (auto [subs, mean] : scaling) {
    std::printf("  %2zu groups: %.2f KB/s\n", subs, mean);
  }
  if (scaling.size() >= 2 && scaling.front().second > 0) {
    std::printf("  growth factor %zux subs -> %.1fx bandwidth (paper: linear)\n",
                scaling.back().first / scaling.front().first,
                scaling.back().second / scaling.front().second);
  }
  return 0;
}

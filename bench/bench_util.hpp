// Shared helpers for the paper-reproduction bench binaries.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "whisper/testbed.hpp"

namespace whisper::bench {

inline void banner(const std::string& title, const std::string& paper_shape) {
  std::printf("==========================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper-reports: %s\n", paper_shape.c_str());
  std::printf("==========================================================\n");
}

/// Shared "--key=value" scanner backing arg_size/arg_str; returns the value
/// of the first matching argument.
inline std::optional<std::string> find_arg(int argc, char** argv, const std::string& key) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return std::nullopt;
}

/// Bare "--key" flag (no value), e.g. --quick.
inline bool arg_flag(int argc, char** argv, const std::string& key) {
  const std::string flag = "--" + key;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

/// Parse "--nodes=200"-style overrides (small defaults keep CI fast; pass
/// the paper-scale values to reproduce the original experiment sizes).
/// Malformed values exit with a usage message instead of throwing.
inline std::size_t arg_size(int argc, char** argv, const std::string& key,
                            std::size_t fallback) {
  const std::optional<std::string> value = find_arg(argc, argv, key);
  if (!value) return fallback;
  if (value->empty() || value->find_first_not_of("0123456789") != std::string::npos) {
    std::fprintf(stderr, "usage: --%s=<non-negative integer>, got --%s=%s\n", key.c_str(),
                 key.c_str(), value->c_str());
    std::exit(2);
  }
  try {
    return static_cast<std::size_t>(std::stoull(*value));
  } catch (const std::out_of_range&) {
    std::fprintf(stderr, "usage: --%s=<non-negative integer>, got --%s=%s (out of range)\n",
                 key.c_str(), key.c_str(), value->c_str());
    std::exit(2);
  }
}

inline std::string arg_str(int argc, char** argv, const std::string& key,
                           const std::string& fallback) {
  return find_arg(argc, argv, key).value_or(fallback);
}

/// Minimal insertion-ordered JSON object builder for the machine-readable
/// bench outputs (BENCH_*.json). Keys and string values are plain
/// identifiers/paths, so no escaping is performed.
class Json {
 public:
  Json& put(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    fields_.emplace_back(key, buf);
    return *this;
  }
  Json& put(const std::string& key, std::uint64_t v) {
    fields_.emplace_back(key, std::to_string(v));
    return *this;
  }
  Json& put(const std::string& key, int v) {
    fields_.emplace_back(key, std::to_string(v));
    return *this;
  }
  Json& put(const std::string& key, bool v) {
    fields_.emplace_back(key, v ? "true" : "false");
    return *this;
  }
  Json& put(const std::string& key, const std::string& v) {
    fields_.emplace_back(key, "\"" + v + "\"");
    return *this;
  }
  Json& put(const std::string& key, const char* v) { return put(key, std::string(v)); }
  Json& put(const std::string& key, const Json& v) {
    fields_.emplace_back(key, v.dump(1));
    return *this;
  }

  std::string dump(int depth = 0) const {
    const std::string pad(static_cast<std::size_t>(depth + 1) * 2, ' ');
    std::string out = "{\n";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      out += pad + "\"" + fields_[i].first + "\": " + fields_[i].second;
      if (i + 1 < fields_.size()) out += ",";
      out += "\n";
    }
    out += std::string(static_cast<std::size_t>(depth) * 2, ' ') + "}";
    return out;
  }

 private:
  // (key, pre-rendered value); nested objects are re-indented via dump(1),
  // which keeps two-level documents readable — deeper nesting would need
  // real recursive indentation.
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Write a JSON document (trailing newline added). Returns success.
inline bool write_json_file(const std::string& path, const Json& json) {
  std::ofstream out(path);
  if (!out) return false;
  out << json.dump() << "\n";
  return static_cast<bool>(out);
}

}  // namespace whisper::bench

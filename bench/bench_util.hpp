// Shared helpers for the paper-reproduction bench binaries.
#pragma once

#include <cstdio>
#include <string>

#include "whisper/testbed.hpp"

namespace whisper::bench {

inline void banner(const std::string& title, const std::string& paper_shape) {
  std::printf("==========================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper-reports: %s\n", paper_shape.c_str());
  std::printf("==========================================================\n");
}

/// Parse "--nodes=200"-style overrides (small defaults keep CI fast; pass
/// the paper-scale values to reproduce the original experiment sizes).
inline std::size_t arg_size(int argc, char** argv, const std::string& key,
                            std::size_t fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return static_cast<std::size_t>(std::stoull(arg.substr(prefix.size())));
  }
  return fallback;
}

inline std::string arg_str(int argc, char** argv, const std::string& key,
                           const std::string& fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return fallback;
}

}  // namespace whisper::bench

// PSS data-structure micro-benchmarks (google-benchmark): view merges with
// and without the Π bias, overlay metric computation, backlog churn.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "nylon/pss.hpp"
#include "pss/metrics.hpp"
#include "pss/view.hpp"
#include "wcl/backlog.hpp"

namespace whisper {
namespace {

nylon::PssEntry make_entry(Rng& rng) {
  nylon::PssEntry e;
  e.card.id = NodeId{rng.next_below(10000) + 1};
  e.card.is_public = rng.next_bool(0.3);
  e.age = static_cast<std::uint32_t>(rng.next_below(30));
  return e;
}

void BM_ViewMerge(benchmark::State& state) {
  const auto pi = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  pss::View<nylon::PssEntry> view(10);
  for (int i = 0; i < 10; ++i) view.insert(make_entry(rng));
  std::vector<nylon::PssEntry> received;
  for (int i = 0; i < 5; ++i) received.push_back(make_entry(rng));
  Rng merge_rng(99);
  for (auto _ : state) {
    pss::View<nylon::PssEntry> v = view;
    v.merge(received, NodeId{99999}, pi, merge_rng);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_ViewMerge)->Arg(0)->Arg(3);

void BM_ViewRandomSubset(benchmark::State& state) {
  Rng rng(2);
  pss::View<nylon::PssEntry> view(20);
  for (int i = 0; i < 20; ++i) view.insert(make_entry(rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(view.random_subset(5, rng));
  }
}
BENCHMARK(BM_ViewRandomSubset);

void BM_ClusteringCoefficient(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  Rng rng(3);
  pss::OverlayGraph graph;
  for (std::uint64_t i = 1; i <= n; ++i) {
    std::vector<NodeId> nbrs;
    for (int j = 0; j < 10; ++j) nbrs.push_back(NodeId{rng.next_below(n) + 1});
    graph[NodeId{i}] = std::move(nbrs);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(pss::clustering_coefficients(graph));
  }
}
BENCHMARK(BM_ClusteringCoefficient)->Arg(100)->Arg(1000)->Unit(benchmark::kMicrosecond);

void BM_InDegrees(benchmark::State& state) {
  Rng rng(4);
  pss::OverlayGraph graph;
  for (std::uint64_t i = 1; i <= 1000; ++i) {
    std::vector<NodeId> nbrs;
    for (int j = 0; j < 10; ++j) nbrs.push_back(NodeId{rng.next_below(1000) + 1});
    graph[NodeId{i}] = std::move(nbrs);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(pss::in_degrees(graph));
  }
}
BENCHMARK(BM_InDegrees)->Unit(benchmark::kMicrosecond);

void BM_BacklogPush(benchmark::State& state) {
  Rng rng(5);
  wcl::ConnectionBacklog cb(20);
  wcl::CbEntry e;
  for (auto _ : state) {
    e.card.id = NodeId{rng.next_below(40) + 1};
    e.card.is_public = rng.next_bool(0.3);
    cb.push(e);
    benchmark::DoNotOptimize(cb);
  }
}
BENCHMARK(BM_BacklogPush);

}  // namespace
}  // namespace whisper

BENCHMARK_MAIN();

// Ablation studies for the design choices called out in DESIGN.md §5.
//
//  A. Path length (f mixes): delivery latency and CPU vs collusion
//     resistance (the paper fixes f=2; footnote 2 sketches larger f).
//  B. Mix selection: CB/helper-guided (WHISPER) vs random nodes — shows why
//     the connection backlog exists (random mixes fail behind NATs).
//  C. Retry budget: success vs number of alternatives tried under churn
//     (the paper's Π retries, footnote 3).
//  D. NAT lease regime: TCP-style hour leases (the prototype's regime) vs
//     UDP 5-minute leases — the WCL hinges on routes outliving view
//     entries.
#include <cstdio>

#include "bench_util.hpp"
#include "churn/churn.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace whisper {
namespace {

TestbedConfig base_config(std::uint64_t seed) {
  TestbedConfig cfg;
  cfg.initial_nodes = 120;
  cfg.natted_fraction = 0.7;
  cfg.latency = "planetlab";
  cfg.node.pss.pi_min_public = 3;
  cfg.node.wcl.pi = 3;
  cfg.seed = seed;
  return cfg;
}

// Send `count` confidential messages between random pairs; returns
// (success fraction, mean delivery latency seconds, total attempts).
struct SendStats {
  double success = 0;
  double mean_latency_s = 0;
  double attempts_per_send = 0;
};

SendStats measure_sends(WhisperTestbed& tb, std::size_t count, Rng& rng) {
  auto nodes = tb.alive_nodes();
  std::size_t delivered = 0;
  Samples latencies;
  std::uint64_t attempts_before = 0;
  for (WhisperNode* n : nodes) attempts_before += n->wcl().stats().total_attempts;

  for (std::size_t i = 0; i < count; ++i) {
    WhisperNode* src = nodes[rng.pick_index(nodes)];
    WhisperNode* dst = nodes[rng.pick_index(nodes)];
    if (src == dst || !src->running() || !dst->running()) continue;
    const net::Time sent_at = tb.clock().now();
    bool done = false;
    dst->wcl().on_deliver = [&](Bytes) {
      if (!done) {
        ++delivered;
        latencies.add(static_cast<double>(tb.clock().now() - sent_at) /
                      net::kSecond);
        done = true;
      }
    };
    src->wcl().send_confidential(dst->wcl().self_peer(), to_bytes("ablation probe"));
    tb.run_for(20 * net::kSecond);
    dst->wcl().on_deliver = nullptr;
  }

  std::uint64_t attempts_after = 0;
  for (WhisperNode* n : nodes) attempts_after += n->wcl().stats().total_attempts;

  SendStats out;
  out.success = static_cast<double>(delivered) / static_cast<double>(count);
  out.mean_latency_s = latencies.mean();
  out.attempts_per_send =
      static_cast<double>(attempts_after - attempts_before) / static_cast<double>(count);
  return out;
}

void ablation_path_length() {
  std::printf("\n[A] path length (f mixes): cost of collusion resistance\n");
  Table t({"mixes", "delivered", "mean latency", "attempts/send"});
  for (std::size_t mixes : {1u, 2u, 3u, 4u}) {
    TestbedConfig cfg = base_config(2000 + mixes);
    cfg.node.wcl.mixes = mixes;
    WhisperTestbed tb(cfg);
    tb.run_for(6 * net::kMinute);
    Rng rng(cfg.seed);
    SendStats s = measure_sends(tb, 40, rng);
    t.add_row({std::to_string(mixes), Table::pct(s.success),
               Table::num(s.mean_latency_s, 3) + " s", Table::num(s.attempts_per_send, 2)});
  }
  std::printf("%s", t.render().c_str());
  std::printf("  expected: latency grows roughly linearly with f; f=2 is the paper's\n"
              "  sweet spot (relationship anonymity at ~2 extra one-way delays).\n");
}

void ablation_mix_selection() {
  std::printf("\n[B] mix selection: CB/helper-guided vs random nodes\n");
  // WHISPER selection.
  TestbedConfig cfg = base_config(2100);
  WhisperTestbed tb(cfg);
  tb.run_for(6 * net::kMinute);
  Rng rng(2101);
  SendStats guided = measure_sends(tb, 40, rng);

  // "Random" selection emulation: destinations advertised without helpers
  // and with nil hints force mixes to resolve blindly — equivalent to
  // picking a random-node path in a NAT-constrained network.
  auto nodes = tb.alive_nodes();
  std::size_t delivered = 0;
  for (std::size_t i = 0; i < 40; ++i) {
    WhisperNode* src = nodes[rng.pick_index(nodes)];
    WhisperNode* dst = nodes[rng.pick_index(nodes)];
    if (src == dst) continue;
    wcl::RemotePeer blind = dst->wcl().self_peer();
    // Replace the helper set with random nodes (not taken from dst's CB).
    blind.helpers.clear();
    for (int k = 0; k < 3; ++k) {
      WhisperNode* r = nodes[rng.pick_index(nodes)];
      if (r == dst || r == src) continue;
      wcl::Helper h;
      h.card = r->transport().self_card();
      h.key = r->keypair().pub;
      blind.helpers.push_back(h);
    }
    bool done = false;
    dst->wcl().on_deliver = [&](Bytes) { done = true; };
    src->wcl().send_confidential(blind, to_bytes("blind probe"));
    tb.run_for(20 * net::kSecond);
    dst->wcl().on_deliver = nullptr;
    if (done) ++delivered;
  }

  Table t({"selection", "delivered"});
  t.add_row({"CB/helper-guided (WHISPER)", Table::pct(guided.success)});
  t.add_row({"random helpers", Table::pct(static_cast<double>(delivered) / 40.0)});
  std::printf("%s", t.render().c_str());
  std::printf("  expected: random helpers often cannot reach a NATted destination —\n"
              "  the connection backlog is what makes the next-to-last hop valid.\n");
}

void ablation_retry_budget() {
  std::printf("\n[C] retry budget under churn (5%%/min)\n");
  Table t({"max retries", "delivered"});
  for (std::size_t retries : {0u, 1u, 3u, 5u}) {
    TestbedConfig cfg = base_config(2200 + retries);
    cfg.latency = "cluster";
    cfg.node.wcl.max_retries = retries;
    WhisperTestbed tb(cfg);
    Rng rng(cfg.seed ^ 1);
    tb.run_for(6 * net::kMinute);
    churn::ChurnEngine engine(
        tb.clock(), [&](std::size_t n) {
          std::size_t k = 0;
          for (std::size_t i = 0; i < n; ++i) {
            if (!tb.kill_random_node().is_nil()) ++k;
          }
          return k;
        },
        [&](std::size_t n) {
          for (std::size_t i = 0; i < n; ++i) tb.spawn_node();
        },
        [&] { return tb.alive_count(); });
    churn::ChurnPhase phase;
    phase.start = tb.clock().now();
    phase.end = phase.start + 30 * net::kMinute;
    phase.leave_fraction = 0.05;
    engine.schedule(phase);
    tb.run_for(3 * net::kMinute);  // let churn bite
    SendStats s = measure_sends(tb, 40, rng);
    t.add_row({std::to_string(retries), Table::pct(s.success)});
  }
  std::printf("%s", t.render().c_str());
  std::printf("  expected: success climbs with the retry budget and saturates around\n"
              "  the paper's Pi retries.\n");
}

void ablation_lease_regime() {
  std::printf("\n[D] NAT lease regime: TCP-style (1 h) vs UDP-style (5 min)\n");
  Table t({"lease regime", "descriptor age", "delivered"});
  // The WCL's next-to-last hop relies on the helper's route to the
  // destination staying open. Fresh descriptors always work; the regimes
  // diverge once the descriptor (and therefore the helper's NAT state) has
  // aged — exactly the situation of a PPSS view entry several cycles old.
  for (bool udp : {false, true}) {
    TestbedConfig cfg = base_config(2300 + (udp ? 1 : 0));
    cfg.latency = "cluster";
    if (udp) {
      cfg.node.transport.route_ttl = 2 * net::kMinute;  // < 5 min UDP lease
    }
    WhisperTestbed tb(cfg);
    tb.run_for(8 * net::kMinute);
    Rng rng(cfg.seed ^ 2);

    // Snapshot destination descriptors now...
    auto nodes = tb.alive_nodes();
    std::vector<std::pair<WhisperNode*, wcl::RemotePeer>> dests;
    for (int i = 0; i < 40; ++i) {
      WhisperNode* dst = nodes[rng.pick_index(nodes)];
      if (dst->is_public()) continue;  // N-node destinations exercise helpers
      dests.emplace_back(dst, dst->wcl().self_peer());
    }
    // ...age them by 6 minutes of protocol time...
    tb.run_for(6 * net::kMinute);
    // ...then open paths using the stale snapshots.
    std::size_t delivered = 0;
    for (auto& [dst, peer] : dests) {
      WhisperNode* src = nodes[rng.pick_index(nodes)];
      if (src == dst) continue;
      bool done = false;
      dst->wcl().on_deliver = [&](Bytes) { done = true; };
      src->wcl().send_confidential(peer, to_bytes("stale descriptor probe"));
      tb.run_for(20 * net::kSecond);
      dst->wcl().on_deliver = nullptr;
      if (done) ++delivered;
    }
    t.add_row({udp ? "UDP-style (short)" : "TCP-style (long)", "6 min",
               Table::pct(dests.empty()
                              ? 0.0
                              : static_cast<double>(delivered) /
                                    static_cast<double>(dests.size()))});
  }
  std::printf("%s", t.render().c_str());
  std::printf("  expected: short-lived routes force more retries/failures — the paper's\n"
              "  near-perfect Table I relies on long-lived (TCP) NAT state.\n");
}

}  // namespace
}  // namespace whisper

int main() {
  using namespace whisper;
  bench::banner("Ablations - design choices behind the WCL",
                "quantifies DESIGN.md §5: path length, CB-guided mixes, retry budget, "
                "NAT lease regime");
  ablation_path_length();
  ablation_mix_selection();
  ablation_retry_budget();
  ablation_lease_regime();
  return 0;
}

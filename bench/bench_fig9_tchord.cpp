// Figure 9: routing delays of a private T-Chord DHT over WHISPER.
//
// Paper setup: a 400-node cluster; 60 of the nodes operate a private
// Chord index inside one group, built with T-Chord over the PPSS; 350
// random queries are routed greedily, and the owner answers the querying
// node directly through a single WCL path (the query ships the querier's
// contact information). Reported: CDF of routing delays, ~190 ms to
// ~1.5 s. Expected shape: smooth CDF from a couple of network RTTs up to a
// multi-hop tail.
#include <cmath>
#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "chord/tchord.hpp"
#include "common/stats.hpp"

int main(int argc, char** argv) {
  using namespace whisper;
  const std::size_t nodes = bench::arg_size(argc, argv, "nodes", 150);
  const std::size_t members = bench::arg_size(argc, argv, "members", 30);
  const std::size_t queries = bench::arg_size(argc, argv, "queries", 120);

  bench::banner("Figure 9 - private T-Chord routing delays (n=" + std::to_string(nodes) +
                    ", group=" + std::to_string(members) + ")",
                "delays from ~2 network RTTs to a ~1.5 s-scale multi-hop tail; "
                "smooth CDF; correct owners found");

  TestbedConfig cfg;
  cfg.initial_nodes = nodes;
  cfg.natted_fraction = 0.7;
  cfg.latency = "cluster";
  cfg.node.pss.pi_min_public = 3;
  cfg.node.wcl.pi = 3;
  cfg.node.ppss.cycle = 30 * net::kSecond;
  cfg.seed = 1200;
  WhisperTestbed tb(cfg);
  Rng rng(1201);

  tb.run_for(5 * net::kMinute);
  const GroupId gid{4242};
  auto nodes_alive = tb.alive_nodes();
  crypto::Drbg d(4242);
  auto& founder_ppss = nodes_alive[0]->create_group(gid, crypto::RsaKeyPair::generate(512, d));
  std::vector<WhisperNode*> group_members{nodes_alive[0]};
  for (std::size_t i = 1; i < members && i < nodes_alive.size(); ++i) {
    auto accr = founder_ppss.invite(nodes_alive[i]->id());
    nodes_alive[i]->join_group(gid, *accr, founder_ppss.self_descriptor());
    group_members.push_back(nodes_alive[i]);
    tb.run_for(3 * net::kSecond);
  }
  tb.run_for(5 * net::kMinute);

  chord::TChordConfig tc;
  tc.cycle = 20 * net::kSecond;
  std::vector<std::unique_ptr<chord::TChord>> rings;
  for (WhisperNode* m : group_members) {
    rings.push_back(std::make_unique<chord::TChord>(tb.clock(), *m->group(gid), tc,
                                                    tb.rng().fork()));
    rings.back()->start();
  }
  tb.run_for(10 * net::kMinute);  // T-Chord converges in a few cycles

  // Global ring for correctness checking.
  std::map<chord::ChordKey, NodeId> ring;
  for (WhisperNode* m : group_members) ring[chord::chord_key_of(m->id())] = m->id();

  Samples delays;
  std::size_t answered = 0, correct = 0;
  std::vector<std::uint32_t> hop_counts;
  for (std::size_t q = 0; q < queries; ++q) {
    auto& querier = rings[rng.pick_index(rings)];
    const chord::ChordKey key = rng.next_u64();
    auto it = ring.lower_bound(key);
    if (it == ring.end()) it = ring.begin();
    const NodeId expected = it->second;
    querier->lookup(key, [&, expected](std::optional<chord::TChord::LookupResult> result) {
      if (!result) return;
      ++answered;
      if (result->owner.id() == expected) ++correct;
      delays.add(static_cast<double>(result->rtt) / net::kSecond);
      hop_counts.push_back(result->hops);
    });
    tb.run_for(5 * net::kSecond);
  }
  tb.run_for(90 * net::kSecond);  // drain stragglers (incl. one retry round)

  std::printf("queries answered: %zu / %zu (correct owner: %zu)\n", answered, queries, correct);
  std::printf("routing delay (s): %s\n", format_stacked_percentiles(delays).c_str());
  std::printf("%s", format_cdf(delays, 14, "delay(s)").c_str());
  double mean_hops = 0;
  for (auto h : hop_counts) mean_hops += h;
  if (!hop_counts.empty()) mean_hops /= static_cast<double>(hop_counts.size());
  std::printf("mean hops: %.2f (Chord expectation: ~log2(%zu)/2 = %.2f)\n", mean_hops,
              members, std::log2(static_cast<double>(members)) / 2.0);
  std::printf("shape-check: delays span a few network RTTs (local keys) up to a\n"
              "multi-hop tail; paper reports 190 ms .. ~1.5 s on its cluster.\n");
  return 0;
}

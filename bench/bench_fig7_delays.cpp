// Figure 7: round-trip-time breakdown of PPSS view exchanges over WCL.
//
// Paper setup: CDFs over 1,500 private view exchanges of (a) the time to
// build the onion WCL path for the request and the response, (b) the RSA
// decrypt time at each hop, and (c) the total exchange RTT; on a 1,000-node
// cluster and a 400-node PlanetLab slice. Expected shape: network delays
// dominate; crypto is ~2 orders of magnitude below the RTT; cluster
// exchanges < 500 ms, PlanetLab > 80% under ~2 s.
#include <cstdio>

#include "bench_util.hpp"
#include "common/stats.hpp"

namespace whisper {
namespace {

void run_testbed(const std::string& latency, std::size_t n_nodes, std::size_t n_groups,
                 std::size_t target_exchanges) {
  TestbedConfig cfg;
  cfg.initial_nodes = n_nodes;
  cfg.natted_fraction = 0.7;
  cfg.latency = latency;
  cfg.node.pss.pi_min_public = 3;
  cfg.node.wcl.pi = 3;
  cfg.seed = 1000 + n_nodes;
  WhisperTestbed tb(cfg);
  Rng rng(cfg.seed ^ 0xf16);

  tb.run_for(5 * net::kMinute);
  std::vector<ppss::Ppss*> leaders;
  std::vector<GroupId> gids;
  auto publics = tb.alive_public_nodes();
  for (std::size_t g = 0; g < n_groups; ++g) {
    const GroupId gid{7000 + g};
    crypto::Drbg d(cfg.seed + g);
    leaders.push_back(
        &publics[g % publics.size()]->create_group(gid, crypto::RsaKeyPair::generate(512, d)));
    gids.push_back(gid);
  }
  for (WhisperNode* node : tb.alive_nodes()) {
    const std::size_t g = rng.pick_index(gids);
    if (node->id() == leaders[g]->self()) continue;
    auto accr = leaders[g]->invite(node->id());
    if (accr) node->join_group(gids[g], *accr, leaders[g]->self_descriptor());
  }
  tb.run_for(5 * net::kMinute);

  // Collect: per-op crypto samples via CPU probes, RTT via PPSS callback.
  Samples build_samples, decrypt_samples, rtt_samples;
  for (WhisperNode* node : tb.alive_nodes()) {
    node->cpu().set_probe([&](net::CpuCategory cat, net::Time t) {
      const double sec = static_cast<double>(t) / net::kSecond;
      if (cat == net::CpuCategory::kRsaEncrypt) build_samples.add(sec);
      if (cat == net::CpuCategory::kRsaDecrypt) decrypt_samples.add(sec);
    });
    for (const GroupId gid : gids) {
      if (auto* g = node->group(gid)) {
        g->on_exchange_rtt = [&](net::Time rtt) {
          rtt_samples.add(static_cast<double>(rtt) / net::kSecond);
        };
      }
    }
  }
  while (rtt_samples.count() < target_exchanges) {
    tb.run_for(net::kMinute);
    if (tb.clock().now() > 4ull * 3600 * net::kSecond) break;  // safety valve
  }

  // Crypto operations are sub-millisecond: report them in ms.
  Samples build_ms, decrypt_ms;
  for (double v : build_samples.values()) build_ms.add(v * 1000.0);
  for (double v : decrypt_samples.values()) decrypt_ms.add(v * 1000.0);

  std::printf("\n--- %s, %zu nodes (%zu exchanges) ---\n", latency.c_str(), n_nodes,
              rtt_samples.count());
  std::printf("  build WCL path (ms):  %s\n", format_stacked_percentiles(build_ms).c_str());
  std::printf("  RSA decrypt/hop (ms): %s\n", format_stacked_percentiles(decrypt_ms).c_str());
  std::printf("  total rtt (s):        %s\n", format_stacked_percentiles(rtt_samples).c_str());

  // Tail latency from the live registry histogram (the same p50/p95/p99 the
  // JSONL exporter emits), cross-checking the callback-collected samples.
  const telemetry::Histogram& h = tb.registry().histogram(
      "ppss.exchange.rtt_us", telemetry::BucketSpec::log_spaced(1'000, 60'000'000));
  std::printf("  rtt tail (s):         p50=%.3f p95=%.3f p99=%.3f (histogram, %llu obs)\n",
              h.percentile(50) / net::kSecond, h.percentile(95) / net::kSecond,
              h.percentile(99) / net::kSecond,
              static_cast<unsigned long long>(h.count()));
  std::printf("  rtt CDF:\n%s", format_cdf(rtt_samples, 12, "rtt(s)").c_str());
  const double ratio = build_samples.mean() > 0 ? rtt_samples.mean() / build_samples.mean() : 0;
  std::printf("  shape-check: rtt/build ratio = %.0fx (paper: ~2 orders of magnitude)\n",
              ratio);

  // Detach probes before teardown.
  for (WhisperNode* node : tb.alive_nodes()) node->cpu().set_probe(nullptr);
}

}  // namespace
}  // namespace whisper

int main(int argc, char** argv) {
  using namespace whisper;
  const std::size_t cluster_nodes = bench::arg_size(argc, argv, "cluster-nodes", 250);
  const std::size_t planetlab_nodes = bench::arg_size(argc, argv, "planetlab-nodes", 120);
  const std::size_t exchanges = bench::arg_size(argc, argv, "exchanges", 400);

  bench::banner("Figure 7 - PPSS exchange RTT breakdown over WCL",
                "network delay dominates; onion build and RSA decrypts ~2 orders of "
                "magnitude below total RTT; cluster < ~0.5 s, planetlab mostly < ~2 s");

  run_testbed("cluster", cluster_nodes, 8, exchanges);
  run_testbed("planetlab", planetlab_nodes, 6, exchanges / 2);
  return 0;
}

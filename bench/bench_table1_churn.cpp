// Table I: WCL route construction success under churn.
//
// Paper setup: ~1,000 nodes, 20 private groups (one membership per node),
// Pi=3; churn script injects X% leaves + X% joins per minute between 300 s
// and 1200 s (100% replacement). Reported: fraction of WCL paths that
// succeed first-hand (Success), succeed after retrying an alternative
// (Alt.), and fail with no alternative (No alt.). Expected shape: Success
// stays >= ~90% even at 10%/min; "No alt." stays around or below ~1.5%.
//
// Defaults: 200 nodes / 8 groups for wall-clock reasons; use --nodes=1000
// --groups=20 for the paper-scale run.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "churn/churn.hpp"

namespace whisper {
namespace {

struct Table1Row {
  std::string churn;
  double success, alt, no_alt;
  std::uint64_t total;
};

Table1Row run_config(std::size_t n_nodes, std::size_t n_groups, double churn_pct_per_min) {
  TestbedConfig cfg;
  cfg.initial_nodes = n_nodes;
  cfg.natted_fraction = 0.7;
  cfg.latency = "cluster";
  cfg.node.pss.pi_min_public = 3;
  cfg.node.wcl.pi = 3;
  cfg.seed = 700 + static_cast<std::uint64_t>(churn_pct_per_min * 10);
  WhisperTestbed tb(cfg);
  Rng rng(cfg.seed ^ 0xc0ffee);

  // Warm the substrate, then set up groups: leaders are P-nodes (protected
  // from churn so joins of replacement nodes keep working — the paper keeps
  // at least one leader reachable too).
  tb.run_for(5 * net::kMinute);
  std::vector<ppss::Ppss*> leaders;
  std::vector<GroupId> groups;
  auto publics = tb.alive_public_nodes();
  for (std::size_t g = 0; g < n_groups; ++g) {
    const GroupId gid{9000 + g};
    WhisperNode* leader = publics[g % publics.size()];
    crypto::Drbg d(cfg.seed + g);
    leaders.push_back(&leader->create_group(gid, crypto::RsaKeyPair::generate(512, d)));
    groups.push_back(gid);
  }
  std::unordered_set<NodeId> protected_ids;
  for (auto* l : leaders) protected_ids.insert(l->self());

  auto subscribe = [&](WhisperNode* node) {
    const std::size_t g = rng.pick_index(groups);
    if (node->id() == leaders[g]->self()) return;
    if (node->group(groups[g]) != nullptr) return;
    auto accr = leaders[g]->invite(node->id());
    if (accr) node->join_group(groups[g], *accr, leaders[g]->self_descriptor());
  };
  for (WhisperNode* node : tb.alive_nodes()) subscribe(node);
  tb.run_for(5 * net::kMinute);

  // Count outcomes through the probe, applying the paper's accounting
  // (footnote 3): failures whose destination is itself dead are destination
  // failures, not WCL route failures, and are excluded.
  struct Counts {
    std::uint64_t first = 0, alt = 0, noalt = 0, dest_failures = 0;
  } counts;
  bool measuring = false;
  auto install_probe = [&](WhisperNode* node) {
    node->wcl().outcome_probe = [&, node](NodeId dest, wcl::SendOutcome outcome) {
      if (!measuring || !node->running()) return;
      WhisperNode* dest_node = tb.node(dest);
      const bool dest_alive = dest_node != nullptr && dest_node->running();
      switch (outcome) {
        case wcl::SendOutcome::kSuccessFirstTry:
          ++counts.first;
          break;
        case wcl::SendOutcome::kSuccessAlternative:
          ++counts.alt;
          break;
        case wcl::SendOutcome::kNoAlternative:
          if (dest_alive) {
            ++counts.noalt;
          } else {
            ++counts.dest_failures;
          }
          break;
      }
    };
  };
  for (WhisperNode* node : tb.alive_nodes()) install_probe(node);


  // Churn window (the paper's 300 s -> 1200 s script, shifted after setup).
  churn::ChurnEngine engine(
      tb.clock(),
      [&](std::size_t n) {
        std::size_t killed = 0;
        for (std::size_t i = 0; i < n; ++i) {
          // Never kill group leaders.
          for (int tries = 0; tries < 20; ++tries) {
            auto alive = tb.alive_nodes();
            WhisperNode* victim = alive[rng.pick_index(alive)];
            if (protected_ids.contains(victim->id())) continue;
            tb.kill_node(victim->id());
            ++killed;
            break;
          }
        }
        return killed;
      },
      [&](std::size_t n) {
        for (std::size_t i = 0; i < n; ++i) {
          WhisperNode& fresh = tb.spawn_node();
          subscribe(&fresh);
          install_probe(&fresh);
        }
      },
      [&] { return tb.alive_count(); });

  churn::ChurnPhase phase;
  phase.start = tb.clock().now();
  phase.end = phase.start + 15 * net::kMinute;
  phase.interval = net::kMinute;
  phase.leave_fraction = churn_pct_per_min / 100.0;
  engine.schedule(phase);
  measuring = true;
  tb.run_for(15 * net::kMinute);
  measuring = false;

  const std::uint64_t total = counts.first + counts.alt + counts.noalt;
  char label[64];
  std::snprintf(label, sizeof(label), "X=%.1f%%/min", churn_pct_per_min);
  const double denom = total > 0 ? static_cast<double>(total) : 1.0;
  return Table1Row{churn_pct_per_min == 0 ? "No churn" : label,
                   static_cast<double>(counts.first) / denom,
                   static_cast<double>(counts.alt) / denom,
                   static_cast<double>(counts.noalt) / denom, total};
}

}  // namespace
}  // namespace whisper

int main(int argc, char** argv) {
  using namespace whisper;
  const std::size_t nodes = bench::arg_size(argc, argv, "nodes", 200);
  const std::size_t groups = bench::arg_size(argc, argv, "groups", 8);

  bench::banner("Table I - WCL route availability under churn (n=" + std::to_string(nodes) +
                    ", groups=" + std::to_string(groups) + ", Pi=3)",
                "Success >= ~90% even at 10%/min churn; 'No alt.' <= ~1.5%; "
                "Alt. grows with churn");

  Table t({"Churn conditions", "Success", "Alt.", "No alt.", "paths"});
  for (double x : {0.0, 0.2, 1.0, 5.0, 10.0}) {
    Table1Row row = run_config(nodes, groups, x);
    t.add_row({row.churn, Table::pct(row.success), Table::pct(row.alt),
               Table::pct(row.no_alt), std::to_string(row.total)});
  }
  std::printf("%s", t.render().c_str());
  std::printf("\n(paper, 1000 nodes: Success 100/98.3/96.7/96.5/90.9%%, "
              "Alt 0/1.42/2.73/2.83/7.86%%, No-alt 0/0.28/0.47/0.77/1.24%%)\n");
  return 0;
}

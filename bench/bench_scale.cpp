// bench_scale — the flagship large-population benchmark for the sharded
// engine (ISSUE 7 tentpole deliverable). Two measurements into
// BENCH_scale.json:
//
//   1. engine_parity_1k: the same 1k-node scenario on the classic
//      single-threaded WhisperTestbed and on ScaleTestbed at S=1. The
//      sharded builder must not cost anything when sharding is off — the
//      acceptance bar is S=1 within 5% of the old engine.
//   2. scale_sweep: a 100k-node deployment booted and run to completion at
//      S=1 and S=8, reporting aggregate sim-events per wall-second and the
//      S=8/S=1 speedup.
//
// Honest-numbers note: the speedup is whatever the hardware gives, and
// the JSON carries "hardware_threads" so the reader can tell parallelism
// from the rest. Two effects stack: thread parallelism (needs cores) and
// a purely algorithmic win — S shards keep S small event heaps instead
// of one population-sized heap, so every push/pop walks fewer levels
// over a working set that actually fits in cache. The committed 1-thread
// baseline isolates the second effect: identical executed-event counts
// at S=1 and S=8, yet S=8 runs >3x faster. The determinism gate
// (tests/integration/sharded_determinism_test.cpp) is unconditional
// either way.
//
//   bench_scale [--quick] [--json=<dir>] [--nodes=100000] [--minutes=2]
//
// --quick shrinks to 2k nodes / 1 virtual minute for CI smoke runs.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "whisper/keypool.hpp"
#include "whisper/scale.hpp"
#include "whisper/testbed.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace whisper;
  const bool quick = bench::arg_flag(argc, argv, "quick");
  const std::string json_dir = bench::arg_str(argc, argv, "json", ".");
  const std::size_t nodes =
      bench::arg_size(argc, argv, "nodes", quick ? 2'000 : 100'000);
  const std::size_t minutes = bench::arg_size(argc, argv, "minutes", quick ? 1 : 2);

  bench::banner("Scale - sharded engine at large populations",
                "not a paper figure; the ISSUE-7 100k-node deliverable");

  bench::Json out;
  out.put("schema", "whisper.bench.scale/v1");
  out.put("quick", quick);
  out.put("hardware_threads",
          static_cast<std::uint64_t>(std::thread::hardware_concurrency()));

  {
    // --- 1. S=1 parity against the classic engine at 1k nodes. ---
    const std::size_t kParityNodes = quick ? 200 : 1'000;
    const net::Time kParityRun = (quick ? 2 : 10) * net::kMinute;

    // The RSA key pool is process-wide and lazily grown: whichever testbed
    // boots first would pay every keygen. Warm it up front so both sides
    // time the engine, not the pool.
    for (std::size_t i = 0; i < kParityNodes; ++i) pooled_keypair(i, 512);

    const auto classic_start = Clock::now();
    double classic_wall_s = 0;
    std::uint64_t classic_events = 0;
    {
      TestbedConfig cfg;
      cfg.initial_nodes = kParityNodes;
      cfg.natted_fraction = 0.7;
      cfg.latency = "cluster";
      cfg.seed = 7;
      WhisperTestbed tb(cfg);
      tb.run_for(kParityRun);
      classic_wall_s = seconds_since(classic_start);
      classic_events = tb.executed_events();
    }

    const auto sharded_start = Clock::now();
    double sharded_wall_s = 0;
    std::uint64_t sharded_events = 0;
    {
      ScaleConfig cfg;
      cfg.initial_nodes = kParityNodes;
      cfg.shards = 1;
      cfg.natted_fraction = 0.7;
      cfg.latency = "cluster";
      cfg.seed = 7;
      ScaleTestbed tb(cfg);
      tb.run_for(kParityRun);
      sharded_wall_s = seconds_since(sharded_start);
      sharded_events = tb.executed_events();
    }

    bench::Json j;
    j.put("nodes", static_cast<std::uint64_t>(kParityNodes));
    j.put("virtual_minutes", static_cast<std::uint64_t>(kParityRun / net::kMinute));
    j.put("classic_wall_seconds", classic_wall_s);
    j.put("classic_events", classic_events);
    j.put("s1_wall_seconds", sharded_wall_s);
    j.put("s1_events", sharded_events);
    // > 1 means S=1 is slower than the classic engine by that factor; the
    // acceptance bar is <= 1.05.
    j.put("s1_overhead_factor", sharded_wall_s / classic_wall_s);
    out.put("engine_parity_1k", j);
    std::printf("parity %zu nodes: classic %.1fs, S=1 %.1fs (overhead %.3fx)\n",
                kParityNodes, classic_wall_s, sharded_wall_s,
                sharded_wall_s / classic_wall_s);
  }

  {
    // --- 2. The 100k-node sweep. PlanetLab latency: its 5 ms lower bound
    // gives the conservative sync a 50x wider lockstep window than the
    // cluster model's 100 us, which is also the realistic model for a
    // planet-scale deployment. Per-node telemetry off (aggregate metrics
    // remain); pooled keys recycled with a pure-index cycle so keygen does
    // not dominate boot.
    bench::Json sweep;
    const std::size_t kKeyCycle = 4'096;
    const auto keygen_start = Clock::now();
    for (std::size_t i = 0; i < std::min(nodes, kKeyCycle); ++i) {
      pooled_keypair(i, 512);
    }
    sweep.put("keygen_wall_seconds", seconds_since(keygen_start));
    double s1_run_wall = 0;
    for (const std::size_t shards : {std::size_t{1}, std::size_t{8}}) {
      ScaleConfig cfg;
      cfg.initial_nodes = nodes;
      cfg.shards = shards;
      cfg.natted_fraction = 0.7;
      cfg.latency = "planetlab";
      cfg.seed = 21;
      cfg.node_telemetry = false;
      cfg.key_cycle = kKeyCycle;
      const auto boot_start = Clock::now();
      ScaleTestbed tb(cfg);
      const double boot_wall_s = seconds_since(boot_start);

      const auto run_start = Clock::now();
      tb.run_for(minutes * net::kMinute);
      const double run_wall_s = seconds_since(run_start);
      const double events_per_wall_sec =
          static_cast<double>(tb.executed_events()) / run_wall_s;

      bench::Json j;
      j.put("shards", static_cast<std::uint64_t>(shards));
      j.put("nodes", static_cast<std::uint64_t>(nodes));
      j.put("virtual_minutes", static_cast<std::uint64_t>(minutes));
      j.put("boot_wall_seconds", boot_wall_s);
      j.put("run_wall_seconds", run_wall_s);
      j.put("sim_events_executed", tb.executed_events());
      j.put("sim_events_per_wall_sec", events_per_wall_sec);
      j.put("cross_shard_messages", tb.cross_shard_messages());
      j.put("alive_nodes", static_cast<std::uint64_t>(tb.alive_count()));
      if (shards == 1) {
        s1_run_wall = run_wall_s;
      } else {
        j.put("speedup_vs_s1", s1_run_wall / run_wall_s);
      }
      sweep.put("s" + std::to_string(shards), j);
      std::printf("scale %zu nodes / S=%zu: boot %.1fs, run %.1fs "
                  "(%.0f events/s, %llu cross-shard)\n",
                  nodes, shards, boot_wall_s, run_wall_s, events_per_wall_sec,
                  (unsigned long long)tb.cross_shard_messages());
    }
    sweep.put("note",
              "speedup_vs_s1 stacks thread parallelism (needs cores; see "
              "hardware_threads) on an algorithmic win from S small "
              "per-shard event heaps replacing one population-sized heap; "
              "executed-event counts are identical across S");
    out.put("scale_sweep", sweep);
  }

  const std::string path = json_dir + "/BENCH_scale.json";
  if (!bench::write_json_file(path, out)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
